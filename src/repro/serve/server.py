"""The asyncio session server: table, eviction, recovery, dispatch.

One :class:`SimServer` owns a table of live :class:`~repro.serve.session.Session`
objects plus an index of *spooled* ones -- sessions evicted to checkpoint
files in a spool directory. The table is LRU-ordered (every session
request touches its entry); when a ``create`` would exceed
``max_sessions``, the least-recently-used idle session is frozen to the
spool, and any request addressing a spooled session transparently thaws
it first. Because an evict/thaw cycle is bitwise-invisible (PR 5's
checkpoint contract, re-argued in :mod:`repro.serve.session`), clients
cannot observe whether their session stayed resident -- the property
that makes the LRU policy safe to apply blindly.

The spool doubles as crash recovery: spool files are written atomically
(temp file + ``os.replace``, the same pattern as
:func:`~repro.sim.checkpoint.save_checkpoint`), and a starting server
scans its spool directory and re-indexes every record it finds, so
sessions evicted before a crash survive it.

Concurrency model
-----------------

One task per connection, reading requests strictly in order: a reply is
written before the next request on that connection is read (replies are
therefore in request order -- the protocol invariant). A second task per
connection drains its :class:`~repro.serve.session.OutboundChannel` to
the socket. The channel carries two lanes through one FIFO: control
frames (hello, replies) are never dropped, while stream event frames
are bounded by ``outbound_limit`` and governed by each session's
backpressure policy -- overload can discard events, never a reply. Long
``run`` requests yield the loop every quantum, so N connections advance
N sessions concurrently with no thread in sight.

Eviction keeps live subscriptions: spool files cannot carry them (a
subscriber is a handle on a live connection), so :meth:`SimServer._evict`
parks a session's subscribers in server memory keyed by session id and
thaw re-attaches them -- streams resume exactly where the frozen session
does. A crash loses only those parked handles, whose connections died
with the process anyway.
"""

from __future__ import annotations

import asyncio
import json
import os
import pathlib
import re
import time
from typing import Dict, List, Optional

from repro.sim.metrics import StreamingQuantile

from .protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    decode_frame,
    encode_frame,
    hello_frame,
    parse_request,
    reply_error,
    reply_ok,
)
from .session import (
    MachineCache,
    OutboundChannel,
    Session,
    SessionConfig,
    SessionError,
    Subscriber,
)

#: Session ids must be filesystem-safe: they name spool files.
_SESSION_ID_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")

#: Default bound of each connection's outbound event lane (frames);
#: control frames (replies, hello) are never bounded or dropped.
DEFAULT_OUTBOUND_LIMIT = 1024


class SimServer:
    """A TCP server multiplexing many simulation sessions."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        spool_dir: Optional[str] = None,
        max_sessions: int = 1024,
        session_config: Optional[SessionConfig] = None,
        outbound_limit: int = DEFAULT_OUTBOUND_LIMIT,
    ) -> None:
        if max_sessions < 1:
            raise ValueError("max_sessions must be >= 1")
        if outbound_limit < 1:
            raise ValueError("outbound_limit must be >= 1")
        self.host = host
        self.port = port
        self.spool_dir = spool_dir
        self.max_sessions = max_sessions
        self.session_config = session_config or SessionConfig()
        self.outbound_limit = outbound_limit
        #: Live sessions, LRU-ordered: first entry is coldest.
        self.sessions: Dict[str, Session] = {}
        #: Spooled sessions: id -> spool file path.
        self.spooled: Dict[str, str] = {}
        #: Subscribers of spooled sessions, parked until thaw re-attaches
        #: them (spool files cannot carry live connection handles).
        self._evicted_subs: Dict[str, List[Subscriber]] = {}
        self.machines = MachineCache()
        self._server: Optional[asyncio.AbstractServer] = None
        self._next_sid = 0
        #: Request latencies in integer microseconds.
        self.latency = StreamingQuantile()
        self.counters = {
            "connections": 0,
            "requests": 0,
            "protocol_errors": 0,
            "errors": 0,
            "created": 0,
            "closed": 0,
            "evictions": 0,
            "thaws": 0,
            "recovered": 0,
        }

    # --- lifecycle --------------------------------------------------------------

    async def start(self) -> None:
        """Bind the listening socket and recover any spooled sessions."""
        if self.spool_dir is not None:
            os.makedirs(self.spool_dir, exist_ok=True)
            for path in sorted(pathlib.Path(self.spool_dir).glob("*.json")):
                sid = path.stem
                if _SESSION_ID_RE.match(sid) and sid not in self.spooled:
                    self.spooled[sid] = str(path)
                    self.counters["recovered"] += 1
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=self.host,
            port=self.port,
            limit=MAX_FRAME_BYTES,
        )
        # Port 0 binds an ephemeral port; publish the real one.
        self.port = self._server.sockets[0].getsockname()[1]

    @property
    def address(self):
        return (self.host, self.port)

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # --- connection handling ----------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        self.counters["connections"] += 1
        outbound = OutboundChannel(self.outbound_limit)
        drain = asyncio.ensure_future(self._drain_outbound(outbound, writer))
        outbound.put_control(encode_frame(hello_frame()))
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ValueError, asyncio.LimitOverrunError):
                    # Oversized line: the stream cannot be re-synced.
                    self.counters["protocol_errors"] += 1
                    break
                except (ConnectionError, OSError):
                    break
                except asyncio.CancelledError:
                    # Loop teardown; exit quietly so the streams-layer
                    # completion callback sees a clean task.
                    break
                if not line:
                    break
                reply = await self._dispatch(line, outbound)
                outbound.put_control(encode_frame(reply))
        finally:
            for session in self.sessions.values():
                session.unsubscribe_channel(outbound)
            self._unpark_channel(outbound)
            outbound.put_control(None)  # sentinel: flush then stop
            try:
                await drain
            except (asyncio.CancelledError, ConnectionError, OSError):
                # Loop teardown cancels the drain task out from under
                # us; the connection is going away either way.
                drain.cancel()
            writer.close()
            try:
                await writer.wait_closed()
            except (asyncio.CancelledError, ConnectionError, OSError):
                pass

    def _unpark_channel(self, channel: OutboundChannel) -> None:
        """Forget parked subscriptions of a closing connection."""
        for sid in list(self._evicted_subs):
            kept = [
                s for s in self._evicted_subs[sid] if s.channel is not channel
            ]
            if kept:
                self._evicted_subs[sid] = kept
            else:
                del self._evicted_subs[sid]

    @staticmethod
    async def _drain_outbound(outbound: OutboundChannel, writer) -> None:
        while True:
            data = await outbound.get()
            if data is None:
                break
            writer.write(data)
            try:
                await writer.drain()
            except (ConnectionError, OSError):
                # Peer vanished: keep consuming so producers never hang
                # on a full queue feeding a dead socket.
                while True:
                    leftover = await outbound.get()
                    if leftover is None:
                        return

    async def _dispatch(self, line: bytes, outbound: OutboundChannel) -> dict:
        """Decode, handle, and time one request; always returns a reply."""
        t0 = time.perf_counter_ns()
        rid = -1
        try:
            frame = decode_frame(line)
            raw_id = frame.get("id")
            if isinstance(raw_id, int) and not isinstance(raw_id, bool):
                rid = raw_id
            rtype, rid, sid = parse_request(frame)
            reply = reply_ok(rid, await self._handle(rtype, sid, frame, outbound))
        except ProtocolError as exc:
            self.counters["protocol_errors"] += 1
            reply = reply_error(rid, str(exc))
        except asyncio.CancelledError:  # pragma: no cover
            raise
        except Exception as exc:
            # Session/engine failures (bad workloads, deadlocks, budget
            # blowouts) become error replies; the server stays up.
            self.counters["errors"] += 1
            reply = reply_error(rid, f"{type(exc).__name__}: {exc}")
        self.counters["requests"] += 1
        self.latency.add((time.perf_counter_ns() - t0) // 1000)
        return reply

    # --- request handlers -------------------------------------------------------

    async def _handle(
        self, rtype: str, sid: Optional[str], frame: dict, outbound
    ) -> dict:
        if rtype == "ping":
            return {"pong": True, "proto": PROTOCOL_VERSION}
        if rtype == "server_stats":
            return self.server_stats_payload()
        if rtype == "create":
            return self._handle_create(sid, frame)
        session = self._session(sid)
        if rtype == "step":
            cycles = frame.get("cycles", 1)
            if not isinstance(cycles, int) or isinstance(cycles, bool) or cycles < 1:
                raise SessionError("step needs integer 'cycles' >= 1")
            return await session.advance(cycles)
        if rtype == "run":
            return await session.advance(None)
        if rtype == "submit_demand":
            return session.submit_demand(frame.get("demand") or {})
        if rtype == "inject_fault":
            return session.inject_faults(frame.get("faults") or {})
        if rtype == "snapshot":
            return {
                "session": sid,
                "cycle": session.engine.cycle,
                "checkpoint": session.snapshot_text(),
            }
        if rtype == "stats":
            return session.stats_payload()
        if rtype == "subscribe":
            streams = frame.get("streams")
            if streams is None:
                streams = ["trace", "metrics"]
            if not isinstance(streams, list) or not all(
                isinstance(s, str) for s in streams
            ):
                raise SessionError("'streams' must be a list of stream names")
            metrics_every = frame.get("metrics_every", 0)
            if not isinstance(metrics_every, int) or isinstance(
                metrics_every, bool
            ):
                raise SessionError("'metrics_every' must be an integer")
            session.subscribe(Subscriber(outbound, streams, metrics_every))
            return {"session": sid, "streams": sorted(streams)}
        if rtype == "close":
            return self._handle_close(session)
        if rtype == "evict":
            session._require_idle("evict")
            path = self._evict(session)
            return {"session": sid, "evicted": True, "spool": path}
        raise ProtocolError(f"unhandled request type {rtype!r}")  # pragma: no cover

    def _handle_create(self, sid: Optional[str], frame: dict) -> dict:
        if sid is None:
            sid = f"s{self._next_sid}"
            self._next_sid += 1
        elif not _SESSION_ID_RE.match(sid):
            raise SessionError(
                "session ids are 1-64 chars of [A-Za-z0-9._-], starting "
                "with an alphanumeric (they name spool files)"
            )
        if sid in self.sessions or sid in self.spooled:
            raise SessionError(f"session {sid!r} already exists")
        overrides = frame.get("config") or {}
        if not isinstance(overrides, dict):
            raise SessionError("'config' must be a JSON object")
        import dataclasses as _dc

        base = _dc.asdict(self.session_config)
        unknown = set(overrides) - set(base)
        if unknown:
            raise SessionError(
                f"unknown config keys {sorted(unknown)}; "
                f"known: {sorted(base)}"
            )
        base.update(overrides)
        config = SessionConfig(**base)
        session = Session.create(
            sid, frame.get("workload") or {}, config, self.machines
        )
        self._make_room()
        self.sessions[sid] = session
        self.counters["created"] += 1
        return {
            "session": sid,
            "cycle": session.engine.cycle,
            "kind": session.workload.get("kind", "idle"),
            "drained": session.drained,
        }

    def _handle_close(self, session: Session) -> dict:
        session._require_idle("close")
        sid = session.session_id
        final = session.stats_payload()
        del self.sessions[sid]
        self.counters["closed"] += 1
        return {"session": sid, "closed": True, "final": final}

    # --- session table ----------------------------------------------------------

    def _session(self, sid: str) -> Session:
        """Resolve a live session, thawing from the spool on a miss."""
        session = self.sessions.get(sid)
        if session is not None:
            self.sessions[sid] = self.sessions.pop(sid)  # LRU touch
            return session
        path = self.spooled.get(sid)
        if path is None:
            raise SessionError(f"unknown session {sid!r}")
        try:
            payload = json.loads(pathlib.Path(path).read_text())
        except (OSError, ValueError) as exc:
            raise SessionError(
                f"session {sid!r} is spooled but unreadable: {exc}"
            ) from exc
        session = Session.thaw(payload)
        # Make room *before* forgetting the spool record: if the table is
        # full of busy sessions this raises, and the session must still
        # be reachable (spooled) for a later retry rather than lost.
        self._make_room()
        for sub in self._evicted_subs.pop(sid, []):
            session.subscribe(sub)
        self.sessions[sid] = session
        del self.spooled[sid]
        os.unlink(path)
        self.counters["thaws"] += 1
        return session

    def _make_room(self) -> None:
        """Evict LRU idle sessions until one table slot is free."""
        while len(self.sessions) >= self.max_sessions:
            victim = next(
                (s for s in self.sessions.values() if not s.busy), None
            )
            if victim is None:
                raise SessionError(
                    "session table is full and every session is busy"
                )
            self._evict(victim)

    def _evict(self, session: Session) -> str:
        """Freeze one session to its spool file (atomic write).

        Live subscribers are parked server-side and re-attached on thaw,
        so subscribed clients cannot observe the eviction either -- their
        streams resume when the session does.
        """
        if self.spool_dir is None:
            raise SessionError(
                "eviction needs a spool directory (start the server with "
                "--spool-dir)"
            )
        sid = session.session_id
        payload = session.spool_payload()
        path = os.path.join(self.spool_dir, f"{sid}.json")
        tmp = path + ".tmp"
        with open(tmp, "w") as stream:
            json.dump(payload, stream, separators=(",", ":"))
            stream.write("\n")
        os.replace(tmp, path)
        if session.subscribers:
            self._evicted_subs[sid] = session.subscribers
        del self.sessions[sid]
        self.spooled[sid] = path
        self.counters["evictions"] += 1
        return path

    # --- observation ------------------------------------------------------------

    def server_stats_payload(self) -> dict:
        quantiles = (
            self.latency.quantiles([0.5, 0.95, 0.99])
            if self.latency.count
            else {0.5: 0, 0.95: 0, 0.99: 0}
        )
        payload = {
            "proto": PROTOCOL_VERSION,
            "sessions": {
                "live": len(self.sessions),
                "spooled": len(self.spooled),
                "max": self.max_sessions,
            },
            "latency_us": {
                "count": self.latency.count,
                "p50": quantiles[0.5],
                "p95": quantiles[0.95],
                "p99": quantiles[0.99],
            },
        }
        payload.update(self.counters)
        return payload


async def run_server(
    host: str = "127.0.0.1",
    port: int = 0,
    spool_dir: Optional[str] = None,
    max_sessions: int = 1024,
    session_config: Optional[SessionConfig] = None,
    ready=None,
) -> None:
    """Start a server and serve until cancelled (the CLI entry point).

    ``ready``, when given, is an :class:`asyncio.Event` set once the
    socket is bound -- tests use it to learn the ephemeral port.
    """
    server = SimServer(
        host=host,
        port=port,
        spool_dir=spool_dir,
        max_sessions=max_sessions,
        session_config=session_config,
    )
    await server.start()
    if ready is not None:
        ready.server = server  # type: ignore[attr-defined]
        ready.set()
    try:
        await server.serve_forever()
    except asyncio.CancelledError:
        raise
    finally:
        await server.close()
