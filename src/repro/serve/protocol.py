"""Wire protocol of the simulation service: versioned NDJSON frames.

The serve package multiplexes many concurrent simulation sessions over
one TCP byte stream per client. The protocol is deliberately minimal --
newline-delimited JSON objects ("frames"), one frame per line -- so a
session can be driven from any language, from ``nc``, or from a shell
heredoc, and a captured conversation is diffable text.

Frame taxonomy
--------------

Three frame shapes flow on a connection:

* **requests** (client -> server): ``{"type": <request>, "id": <int>,
  ...}``. ``id`` is a client-chosen correlation token echoed in the
  reply; ids must be JSON integers but carry no ordering semantics.
  Session-scoped requests additionally carry ``"session": <str>``.
* **replies** (server -> client): ``{"type": "reply", "id": <int>,
  "ok": true, "result": {...}}`` or ``{"type": "reply", "id": <int>,
  "ok": false, "error": "..."}``. Exactly one reply per request, in
  per-connection request order.
* **events** (server -> client, unsolicited): ``{"type": "event",
  "stream": "trace"|"metrics", "session": <str>, ...}`` -- pushed to
  subscribed connections as a session runs. ``trace`` events batch raw
  trace JSONL lines (``"events": [<line>, ...]``, exactly the bytes a
  :class:`~repro.sim.trace.JsonlTraceWriter` would emit); ``metrics``
  events carry a non-mutating
  :meth:`~repro.sim.metrics.MetricsCollector.snapshot` dict.

Request types (see :mod:`repro.serve.server` for handler semantics):

========================= =========================================================
``create``                 build a session around a workload spec
``step``                   advance a session at most N cycles
``run``                    advance a session until its traffic drains
``submit_demand``          enqueue a demand-matrix workload into a session
``inject_fault``           schedule future link faults in a faulted session
``snapshot``               return the session's canonical engine checkpoint text
``stats``                  stats dict + metrics snapshot (valid mid-run)
``subscribe``              attach this connection to a session's event streams
``close``                  finalize and discard a session
``evict``                  force-evict a session to the checkpoint spool
``server_stats``           server-wide counters and request-latency quantiles
``ping``                   liveness probe
========================= =========================================================

Serialization is canonical: compact separators, **insertion-ordered**
keys -- never ``sort_keys``, because reply payloads embed
``SimStats.asdict()`` counter dicts whose insertion order is delivery
order and part of the repo-wide bitwise determinism contract. Equal
payloads are therefore equal bytes, which is what lets the conformance
tests compare whole frames.

``PROTOCOL_VERSION`` is carried in the server's hello frame (the first
line it writes on every connection) and checked by the client SDK; bump
it on any frame-shape change.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional, Tuple, Union

#: Version of the frame schema; bump on any shape change.
PROTOCOL_VERSION = 1

#: Hard per-frame size bound (bytes, newline included). Generous enough
#: for a snapshot reply carrying a large session checkpoint; a limit at
#: all so one malformed client cannot balloon server memory.
MAX_FRAME_BYTES = 64 * 1024 * 1024

#: Every request type the server dispatches.
REQUEST_TYPES = (
    "create",
    "step",
    "run",
    "submit_demand",
    "inject_fault",
    "snapshot",
    "stats",
    "subscribe",
    "close",
    "evict",
    "server_stats",
    "ping",
)

#: Request types that address a session (must carry ``"session"``).
SESSION_REQUEST_TYPES = frozenset(REQUEST_TYPES) - {
    "create",
    "server_stats",
    "ping",
}

#: Server-pushed event stream names.
STREAM_NAMES = ("trace", "metrics")


class ProtocolError(ValueError):
    """A frame is malformed, oversized, or violates the frame schema."""


def encode_frame(frame: Dict[str, Any]) -> bytes:
    """Canonical bytes of one frame: compact JSON + newline.

    Insertion-ordered (never ``sort_keys``): embedded stats dicts carry
    meaning in their key order.
    """
    if not isinstance(frame, dict) or "type" not in frame:
        raise ProtocolError("frame must be a dict with a 'type' field")
    line = json.dumps(frame, separators=(",", ":")).encode("utf-8") + b"\n"
    if len(line) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(line)} bytes exceeds MAX_FRAME_BYTES "
            f"({MAX_FRAME_BYTES})"
        )
    return line


def decode_frame(line: Union[bytes, str]) -> Dict[str, Any]:
    """Parse one received line into a frame dict.

    Raises :class:`ProtocolError` on anything but a single JSON object
    with a string ``type`` -- corrupt lines must fail loudly, exactly
    like :func:`repro.sim.trace.read_trace` does for traces.
    """
    if isinstance(line, bytes):
        if len(line) > MAX_FRAME_BYTES:
            raise ProtocolError(
                f"frame of {len(line)} bytes exceeds MAX_FRAME_BYTES "
                f"({MAX_FRAME_BYTES})"
            )
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"frame is not UTF-8: {exc}") from exc
    try:
        frame = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"frame is not valid JSON: {exc}") from exc
    if not isinstance(frame, dict):
        raise ProtocolError(
            f"frame must be a JSON object, got {type(frame).__name__}"
        )
    if not isinstance(frame.get("type"), str):
        raise ProtocolError("frame has no string 'type' field")
    return frame


def parse_request(frame: Dict[str, Any]) -> Tuple[str, int, Optional[str]]:
    """Validate a request frame; returns ``(type, id, session-or-None)``."""
    rtype = frame["type"]
    if rtype not in REQUEST_TYPES:
        raise ProtocolError(
            f"unknown request type {rtype!r}; known: {', '.join(REQUEST_TYPES)}"
        )
    rid = frame.get("id")
    if not isinstance(rid, int) or isinstance(rid, bool):
        raise ProtocolError(f"request {rtype!r} needs an integer 'id'")
    session = frame.get("session")
    if rtype in SESSION_REQUEST_TYPES:
        if not isinstance(session, str) or not session:
            raise ProtocolError(
                f"request {rtype!r} needs a non-empty string 'session'"
            )
    elif session is not None and not isinstance(session, str):
        raise ProtocolError("'session' must be a string when present")
    return rtype, rid, session


def hello_frame(server: str = "repro-serve") -> Dict[str, Any]:
    """The first frame a server writes on every new connection."""
    return {"type": "hello", "proto": PROTOCOL_VERSION, "server": server}


def reply_ok(request_id: int, result: Dict[str, Any]) -> Dict[str, Any]:
    return {"type": "reply", "id": request_id, "ok": True, "result": result}


def reply_error(request_id: int, error: str) -> Dict[str, Any]:
    return {"type": "reply", "id": request_id, "ok": False, "error": error}


def trace_event_frame(session: str, lines: list) -> Dict[str, Any]:
    """One batched trace push: raw JSONL event lines, writer-identical."""
    return {
        "type": "event",
        "stream": "trace",
        "session": session,
        "events": lines,
    }


def metrics_event_frame(
    session: str, cycle: int, snapshot: Dict[str, Any]
) -> Dict[str, Any]:
    """One metrics push: a non-mutating collector snapshot at ``cycle``."""
    return {
        "type": "event",
        "stream": "metrics",
        "session": session,
        "cycle": cycle,
        "snapshot": snapshot,
    }
