"""Simulation-as-a-service: sessions over newline-delimited JSON on TCP.

The serving layer over the deterministic engine stack: many concurrent
simulation sessions multiplexed on one asyncio loop, each advancing in
bounded quanta, observable over versioned NDJSON frames, and evictable
to checkpoint files without a client being able to tell. See
:mod:`repro.serve.protocol` for the wire format,
:mod:`repro.serve.session` for the determinism argument, and
:mod:`repro.serve.server` for the table/eviction/recovery machinery.
"""

from .client import ServeClient, ServeError
from .loadtest import LoadTestSpec, check_report, run_loadtest
from .protocol import PROTOCOL_VERSION, ProtocolError
from .server import SimServer, run_server
from .session import (
    BACKPRESSURE_MODES,
    MachineCache,
    OutboundChannel,
    Session,
    SessionConfig,
    SessionError,
    Subscriber,
    TraceStreamBuffer,
)

__all__ = [
    "BACKPRESSURE_MODES",
    "LoadTestSpec",
    "MachineCache",
    "OutboundChannel",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "ServeClient",
    "ServeError",
    "Session",
    "SessionConfig",
    "SessionError",
    "SimServer",
    "Subscriber",
    "TraceStreamBuffer",
    "check_report",
    "run_loadtest",
    "run_server",
]
