"""Command-line interface: ``python -m repro <command>`` (or ``repro``).

Commands map onto the reproduction's main entry points:

* ``info``       -- machine summary and Figure 2 packaging census
* ``route``      -- print every hop (and VC) of one unified-network route
* ``search``     -- the Section 2.4 direction-order routing search
* ``deadlock``   -- the Section 2.5 dependency-graph verification
* ``throughput`` -- one batch-throughput measurement point
* ``trace``      -- run one batch with structured event tracing, writing
  a JSONL trace (also regenerates the golden conformance traces)
* ``demand``     -- run a demand-matrix workload (seeded hotspot/skew/
  permutation/adversarial generators, multi-epoch rate evolution,
  open- or closed-loop injection)
* ``replay``     -- re-simulate a recorded JSONL trace; a faithful
  replay is byte-identical to the input (``--verify`` enforces it)
* ``faults``     -- sample, validate, and run fault sets (degraded
  topologies): ``faults sample`` / ``faults validate`` / ``faults run``
* ``profile``    -- cProfile the engine hot path over one seeded batch,
  printing a deterministic top-N call-count table
* ``latency``    -- the Figure 11/12 latency model
* ``area``       -- Tables 1 and 2 from the area model
* ``energy``     -- the Figure 13 energy curves

Every command exits 0 on success; operational failures (bad arguments
reaching a model, unroutable requests, invalid fault files) print a
one-line error to stderr and exit 1 rather than dumping a traceback
(argparse usage errors keep their conventional exit code 2).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.geometry import Dim
from repro.core.machine import Machine, MachineConfig
from repro.core.packaging import Packaging
from repro.core.routing import RouteChoice, RouteComputer


def parse_shape(text: str):
    """Parse '8x2x2' (or '4x4' for a two-axis topology) into a shape tuple."""
    parts = text.lower().split("x")
    if len(parts) not in (2, 3):
        raise argparse.ArgumentTypeError(
            f"shape must be KxKxK (torus) or KxK (mesh/chiplet), got {text!r}"
        )
    try:
        return tuple(int(p) for p in parts)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc))


def parse_endpoint(text: str):
    """Parse 'x,y,z:e' into (chip coordinate, endpoint index)."""
    try:
        chip_text, _, ep_text = text.partition(":")
        chip = tuple(int(c) for c in chip_text.split(","))
        endpoint = int(ep_text) if ep_text else 0
        if len(chip) != 3:
            raise ValueError
        return chip, endpoint
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"endpoint must be 'x,y,z:e', got {text!r}"
        )


def _machine(args) -> Machine:
    return Machine(
        MachineConfig(
            shape=args.shape,
            endpoints_per_chip=args.endpoints,
            topology=getattr(args, "topology", "torus"),
        )
    )


def _pattern_factories(shape):
    from repro.traffic.patterns import pattern_factories

    return pattern_factories(shape)


#: Literal mirror of :data:`repro.traffic.patterns.PATTERN_NAMES` --
#: keeping the parser import-free costs a tuple; a test pins the sync.
PATTERN_CHOICES = ("uniform", "1hop", "2hop", "tornado", "reverse-tornado")

#: Literal mirror of :data:`repro.core.topology.TOPOLOGY_NAMES` (same
#: import-free-parser rationale; a test pins the sync).
TOPOLOGY_CHOICES = ("torus", "mesh", "chiplet")


def _batch_trace_meta(machine, args, pattern) -> dict:
    """Trace-header metadata for one batch workload.

    Shared by ``repro trace``, ``repro checkpoint save``, and ``repro
    faults run`` so a checkpointed-and-resumed trace is byte-identical to
    an uninterrupted one: same header record, same key order.

    The machine-readable spec fields (``arb``, ``cores``, ``pattern``,
    ``batch``, ``seed``) make the trace self-describing: ``repro replay``
    reads them to reconstruct the engine configuration -- in particular
    the ``iw`` weight tables -- from the trace alone.
    """
    topology = machine.config.topology
    meta = {
        "shape": list(machine.config.shape),
        "endpoints": args.endpoints,
        "tpc": machine.ticks_per_cycle,
        "arb": args.arbitration,
        "cores": args.cores,
        "pattern": args.pattern,
        "batch": args.batch,
        "seed": args.seed,
        "workload": f"batch {pattern.name} x{args.batch} "
        f"{args.arbitration} seed{args.seed}",
    }
    # Only non-default topologies annotate the header, so every existing
    # torus trace (goldens included) keeps its exact bytes.
    if topology != "torus":
        meta["topology"] = topology
        meta["workload"] += f" topology={topology}"
    return meta


def _batch_end_record(stats, events_written: int, faulted: bool) -> dict:
    """The trailing ``"ev":"end"`` summary record of a batch trace.

    Faulted runs carry the extra ``dropped`` counter (the ``repro faults
    run`` format); healthy runs match ``repro trace``.
    """
    record = {
        "ev": "end",
        "cyc": stats.end_cycle,
        "injected": stats.injected,
        "delivered": stats.delivered,
    }
    if faulted:
        record["dropped"] = stats.dropped
    record["events"] = events_written
    return record


def _resume_trace_writer(trace_path: str, checkpoint_data: dict):
    """Reopen a trace file for resume: truncate to the checkpoint, append.

    A crashed run may have written events past its last checkpoint;
    truncating the file back to the checkpoint's recorded byte offset and
    appending with a header-free writer makes the final file byte-
    identical to a never-interrupted run's.
    """
    from repro.sim.checkpoint import CheckpointError
    from repro.sim.trace import JsonlTraceWriter

    events_written = checkpoint_data["trace"]["events_written"]
    bytes_written = checkpoint_data["trace"]["bytes_written"]
    if events_written is None or bytes_written is None:
        raise CheckpointError(
            "checkpoint was saved without a JSONL trace writer attached; "
            "cannot resume its trace file"
        )
    with open(trace_path, "r+b") as handle:
        handle.truncate(bytes_written)
    stream = open(trace_path, "a")
    return JsonlTraceWriter(
        stream,
        header=False,
        resume_counts=(events_written, bytes_written),
    )


def _checkpointed_trace_writer(args, trace_meta):
    """Shared auto-resume + trace-sink plumbing of checkpointed runs.

    ``repro demand`` and ``repro faults run`` share one contract: an
    existing ``--checkpoint`` file under ``--resume`` marks an
    interrupted run to pick up (rewinding the trace file to the
    checkpoint's recorded byte count); without ``--resume`` it is stale
    state from an earlier run and is cleared. This context manager owns
    that detection plus the four-way trace-sink selection (no trace /
    resumed file / stdout / fresh file) both commands used to duplicate.

    Yields a namespace with ``writer`` (a sink or None), ``resuming``,
    and ``checkpoint_every`` (0 when checkpointing is off) -- ready to
    hand to :func:`~repro.sim.simulator.run_batch` /
    :func:`~repro.traffic.demand.run_demand`.
    """
    import contextlib
    import os
    from types import SimpleNamespace

    from repro.sim.trace import JsonlTraceWriter

    @contextlib.contextmanager
    def manager():
        checkpointing = args.checkpoint is not None
        resuming = (
            checkpointing and args.resume and os.path.exists(args.checkpoint)
        )
        if checkpointing and not resuming and os.path.exists(args.checkpoint):
            # Without --resume an existing snapshot is stale state from
            # some earlier run, not an interruption to pick up; start
            # clean.
            os.unlink(args.checkpoint)
        every = args.checkpoint_every if checkpointing else 0

        def result(writer):
            return SimpleNamespace(
                writer=writer, resuming=resuming, checkpoint_every=every
            )

        if resuming:
            from repro.sim.checkpoint import load_checkpoint

            if args.trace == "-":
                raise ValueError(
                    "--resume cannot rewind a stdout trace; use a file path"
                )
            checkpoint_data = load_checkpoint(args.checkpoint)
            if args.trace is None:
                yield result(None)
                return
            writer = _resume_trace_writer(args.trace, checkpoint_data)
            try:
                yield result(writer)
            finally:
                writer.stream.close()
        elif args.trace is None:
            yield result(None)
        elif args.trace == "-":
            yield result(JsonlTraceWriter(sys.stdout, meta=trace_meta))
        else:
            with open(args.trace, "w") as stream:
                yield result(JsonlTraceWriter(stream, meta=trace_meta))

    return manager()


def cmd_info(args) -> int:
    machine = _machine(args)
    print(machine.describe())
    print(Packaging(machine.config.shape).summary())
    return 0


def cmd_route(args) -> int:
    machine = _machine(args)
    routes = RouteComputer(machine)
    src_chip, src_index = args.src
    dst_chip, dst_index = args.dst
    order = tuple(Dim[c] for c in args.order.upper())
    choice = RouteChoice(dim_order=order, slice_index=args.slice)
    route = routes.compute(
        machine.ep_id[(src_chip, src_index)],
        machine.ep_id[(dst_chip, dst_index)],
        choice,
    )
    print(
        f"{route.internode_hops} inter-node hops, {len(route.hops)} channel hops:"
    )
    for channel_id, vc in route.hops:
        channel = machine.channels[channel_id]
        print(
            f"  {channel.kind.name:13s} "
            f"{str(machine.components[channel.src]):>20s} -> "
            f"{str(machine.components[channel.dst]):<20s} vc={vc}"
        )
    return 0


def cmd_search(args) -> int:
    from repro.core.onchip import ANTON_DIRECTION_ORDER, direction_order_name
    from repro.core.route_search import search_direction_orders

    result = search_direction_orders()
    best = [r.name for r in result.best_orders]
    print(f"minimal worst-case mesh load: {result.best.worst_load:.1f} torus channels")
    print(f"optimal direction orders ({len(best)}): {', '.join(best)}")
    anton = direction_order_name(ANTON_DIRECTION_ORDER)
    print(f"paper's {anton} optimal: {anton in best}")
    return 0


def _default_validation_shape(topology: str):
    """Small per-topology default shape for the verification commands."""
    return {"torus": (3, 3, 3), "mesh": (3, 3), "chiplet": (2, 2)}[topology]


def cmd_deadlock(args) -> int:
    from repro.core import deadlock

    shape = args.shape or _default_validation_shape(args.topology)
    machine = Machine(
        MachineConfig(
            shape=shape,
            endpoints_per_chip=1,
            vc_scheme=args.scheme,
            topology=args.topology,
        )
    )
    report = deadlock.analyze(machine, RouteComputer(machine))
    print(
        f"scheme={args.scheme} topology={args.topology} "
        f"shape={machine.topology.shape_str()}: "
        f"deadlock_free={report.deadlock_free} "
        f"T-VCs={sorted(report.t_vcs_used)} M-VCs={sorted(report.m_vcs_used)} "
        f"routes={report.routes}"
    )
    if report.cycle:
        print("cycle:", deadlock.describe_cycle(machine, report.cycle))
    return 0 if report.deadlock_free == (args.scheme != "unsafe-single") else 1


def cmd_throughput(args) -> int:
    from repro.analysis.throughput import measure_batch
    from repro.traffic.patterns import (
        NHopNeighbor,
        ReverseTornado,
        Tornado,
        UniformRandom,
    )

    machine = _machine(args)
    routes = RouteComputer(machine)
    shape = machine.config.shape  # normalized 3-tuple, not the raw arg
    patterns = {
        "uniform": lambda: UniformRandom(shape),
        "2hop": lambda: NHopNeighbor(shape, 2),
        "1hop": lambda: NHopNeighbor(shape, 1),
        "tornado": lambda: Tornado(shape),
        "reverse-tornado": lambda: ReverseTornado(shape),
    }
    pattern = patterns[args.pattern]()
    point = measure_batch(
        machine,
        routes,
        pattern,
        batch_size=args.batch,
        cores_per_chip=args.cores,
        arbitration=args.arbitration,
        seed=args.seed,
    )
    print(
        f"{pattern.name} / {args.arbitration}: normalized throughput "
        f"{point.normalized_throughput:.3f}, finish spread "
        f"{point.finish_spread:.3f}, {point.completion_cycles} cycles "
        f"({point.wall_seconds:.1f}s wall)"
    )
    return 0


def cmd_run(args) -> int:
    """One batch experiment, optionally sharded across worker processes."""
    import pathlib
    import time

    from repro.sim.simulator import run_batch_sharded
    from repro.traffic.batch import BatchSpec

    machine = _machine(args)
    pattern = _pattern_factories(machine.config.shape)[args.pattern]()
    spec = BatchSpec(
        pattern,
        packets_per_source=args.batch,
        cores_per_chip=args.cores,
        seed=args.seed,
    )
    fault_set = None
    fault_policy = None
    if args.fault_file is not None:
        from repro.faults import FaultPolicy, FaultSet

        fault_set = FaultSet.from_json(
            pathlib.Path(args.fault_file).read_text()
        )
        fault_set.validate(machine)
        fault_policy = FaultPolicy(mode=args.policy, max_retries=args.retries)
    start = time.perf_counter()
    stats = run_batch_sharded(
        machine,
        spec,
        shards=args.shards,
        arbitration=args.arbitration,
        weight_patterns=[pattern] if args.arbitration == "iw" else None,
        fault_set=fault_set,
        fault_policy=fault_policy,
        checkpoint_path=args.checkpoint,
        checkpoint_every=args.checkpoint_every if args.checkpoint else 0,
        transport=args.transport,
    )
    wall = time.perf_counter() - start
    extra = (
        f", {stats.dropped} dropped, {stats.rerouted} rerouted"
        if fault_set is not None
        else ""
    )
    print(
        f"{pattern.name} / {args.arbitration} / shards={args.shards}: "
        f"{stats.delivered} of {stats.injected} delivered{extra} in "
        f"{stats.end_cycle} cycles "
        f"({stats.end_cycle / wall:,.0f} cycles/s, {wall:.2f}s wall)"
    )
    return 0


def cmd_trace(args) -> int:
    import contextlib

    from repro.sim.goldens import GOLDEN_NAMES, write_golden
    from repro.sim.metrics import MetricsCollector
    from repro.sim.simulator import run_batch
    from repro.sim.trace import JsonlTraceWriter, Tee
    from repro.traffic.batch import BatchSpec
    from repro.traffic.patterns import (
        NHopNeighbor,
        ReverseTornado,
        Tornado,
        UniformRandom,
    )

    @contextlib.contextmanager
    def output_stream():
        if args.out == "-":
            yield sys.stdout
        else:
            with open(args.out, "w") as stream:
                yield stream

    if args.list_goldens:
        for name in GOLDEN_NAMES:
            print(name)
        return 0
    if args.golden is not None:
        if args.golden not in GOLDEN_NAMES:
            print(
                f"unknown golden trace {args.golden!r}; "
                f"known: {', '.join(GOLDEN_NAMES)}",
                file=sys.stderr,
            )
            return 2
        try:
            with output_stream() as stream:
                events = write_golden(args.golden, stream, shards=args.shards)
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        if args.out != "-":
            print(f"{args.golden}: {events} events -> {args.out}", file=sys.stderr)
        return 0
    if args.shards > 1:
        print("--shards applies only to --golden regeneration", file=sys.stderr)
        return 2

    machine = _machine(args)
    routes = RouteComputer(machine)
    shape = machine.config.shape  # normalized 3-tuple, not the raw arg
    patterns = {
        "uniform": lambda: UniformRandom(shape),
        "2hop": lambda: NHopNeighbor(shape, 2),
        "1hop": lambda: NHopNeighbor(shape, 1),
        "tornado": lambda: Tornado(shape),
        "reverse-tornado": lambda: ReverseTornado(shape),
    }
    pattern = patterns[args.pattern]()
    collector = MetricsCollector(window_cycles=args.window)
    with output_stream() as stream:
        writer = JsonlTraceWriter(
            stream, meta=_batch_trace_meta(machine, args, pattern)
        )
        spec = BatchSpec(
            pattern,
            packets_per_source=args.batch,
            cores_per_chip=args.cores,
            seed=args.seed,
        )
        stats = run_batch(
            machine,
            routes,
            spec,
            arbitration=args.arbitration,
            weight_patterns=[pattern] if args.arbitration == "iw" else None,
            trace=Tee(writer, collector),
        )
        writer.write_record(
            _batch_end_record(stats, writer.events_written, faulted=False)
        )
    summary = collector.summary(stats.end_cycle)
    quantiles = summary.latency_quantiles
    print(
        f"{pattern.name} / {args.arbitration}: {writer.events_written} events, "
        f"{stats.delivered} packets in {stats.end_cycle} cycles; "
        f"latency p50={quantiles[0.5]} p95={quantiles[0.95]} "
        f"p99={quantiles[0.99]} cycles",
        file=sys.stderr,
    )
    return 0


def cmd_demand(args) -> int:
    import pathlib

    from repro.traffic.demand import (
        DemandMatrix,
        DemandSchedule,
        DemandSpec,
        as_schedule,
        matrix_from_params,
        run_demand,
    )

    if args.epochs < 1:
        raise ValueError(f"--epochs must be >= 1, got {args.epochs}")
    machine = _machine(args)
    routes = RouteComputer(machine)
    faults = None
    fault_set = None
    if args.fault_file is not None:
        from repro.faults import FaultPolicy, FaultRuntime, FaultSet

        fault_set = FaultSet.from_json(
            pathlib.Path(args.fault_file).read_text()
        )
        fault_set.validate(machine)
        faults = FaultRuntime(
            machine,
            fault_set,
            policy=FaultPolicy(mode=args.policy, max_retries=args.retries),
        )
        routes = faults.route_computer

    matrix_json = (
        pathlib.Path(args.matrix_file).read_text()
        if args.matrix_file is not None
        else None
    )

    def make_matrix(epoch: int) -> DemandMatrix:
        # Epoch k draws its matrix from --matrix-seed + k, so multi-epoch
        # runs evolve while staying a pure function of the CLI arguments.
        # The parameters-to-matrix mapping itself lives in
        # matrix_from_params, shared with the serve protocol's demand
        # specs, so "--generator hotspot" means the same matrix on every
        # surface.
        return matrix_from_params(
            args.shape,
            args.generator,
            args.rate,
            seed=args.matrix_seed + epoch,
            hotspots=args.hotspots,
            hot_fraction=args.hot_fraction,
            skew_exponent=args.skew_exponent,
            matrix_json=matrix_json,
            restarts=args.restarts,
            steps=args.steps,
            cores_per_chip=args.cores,
            machine=machine,
            route_computer=routes,
        )

    matrices = [make_matrix(k) for k in range(args.epochs)]
    demand = (
        matrices[0]
        if len(matrices) == 1
        else DemandSchedule.from_matrices(matrices, args.epoch_length)
    )
    spec = DemandSpec(
        demand=demand,
        cores_per_chip=args.cores,
        mode=args.mode,
        duration_cycles=args.duration if args.mode == "open" else 0,
        packets_scale=args.scale,
        injection=args.injection,
        seed=args.seed,
    )
    schedule = as_schedule(demand)
    trace_meta = {
        "shape": list(machine.config.shape),
        "endpoints": args.endpoints,
        "tpc": machine.ticks_per_cycle,
        "arb": args.arbitration,
        "cores": args.cores,
        "workload": (
            f"demand {schedule.name} {args.mode} "
            f"{args.injection} seed{args.seed}"
        ),
    }
    if faults is not None:
        trace_meta["faults"] = len(fault_set)
        trace_meta["policy"] = args.policy

    with _checkpointed_trace_writer(args, trace_meta) as run:
        stats = run_demand(
            machine,
            routes,
            spec,
            arbitration=args.arbitration,
            trace=run.writer,
            faults=faults,
            checkpoint_path=args.checkpoint,
            checkpoint_every=run.checkpoint_every,
        )
        if run.writer is not None:
            run.writer.write_record(
                _batch_end_record(
                    stats,
                    run.writer.events_written,
                    faulted=faults is not None,
                )
            )
    out = sys.stderr if args.trace == "-" else sys.stdout
    dropped = f", {stats.dropped} dropped" if faults is not None else ""
    print(
        f"{schedule.name} / {args.arbitration} ({args.mode}): "
        f"{stats.injected} injected, {stats.delivered} delivered{dropped} "
        f"in {stats.end_cycle} cycles",
        file=out,
    )
    return 0


def cmd_replay(args) -> int:
    import io
    import pathlib

    from repro.traffic.replay import load_replay, replay_trace

    text = pathlib.Path(args.trace_file).read_text()
    if text and not text.endswith("\n"):
        text += "\n"
    lines = text.splitlines()
    workload = load_replay(lines)
    policy = args.arbitration or workload.arbitration or "rr"
    weight_patterns = None
    if policy == "iw":
        if workload.pattern is None:
            raise ValueError(
                "trace header records no 'pattern'; cannot rebuild the iw "
                "weight tables (override with --arbitration rr or age)"
            )
        factories = _pattern_factories(workload.shape)
        if workload.pattern not in factories:
            raise ValueError(
                f"trace header pattern {workload.pattern!r} is not a CLI "
                f"pattern; replay via the API with explicit weight_patterns"
            )
        weight_patterns = [factories[workload.pattern]()]

    buffer = io.StringIO()
    stats, workload, events = replay_trace(
        lines,
        out_stream=buffer,
        arbitration=args.arbitration,
        weight_patterns=weight_patterns,
    )
    replayed = buffer.getvalue()
    if args.trace is not None:
        if args.trace == "-":
            sys.stdout.write(replayed)
        else:
            with open(args.trace, "w") as stream:
                stream.write(replayed)
    identical = replayed == text
    out = sys.stderr if args.trace == "-" else sys.stdout
    print(
        f"replayed {events} events / {stats.delivered} packets in "
        f"{stats.end_cycle} cycles ({policy}); round-trip "
        f"{'byte-identical' if identical else 'DIVERGED'}",
        file=out,
    )
    if args.verify and not identical:
        print(
            "error: replay is not byte-identical to the input",
            file=sys.stderr,
        )
        return 1
    return 0


#: CLI names for failable channel kinds (``repro faults sample --kinds``).
FAULT_KIND_NAMES = ("torus", "mesh", "skip", "rca", "car")


def _fault_kinds(names):
    from repro.core.machine import ChannelKind

    mapping = {
        "torus": ChannelKind.TORUS,
        "mesh": ChannelKind.MESH,
        "skip": ChannelKind.SKIP,
        "rca": ChannelKind.ROUTER_TO_CA,
        "car": ChannelKind.CA_TO_ROUTER,
    }
    return tuple(mapping[name] for name in names)


def _load_fault_set(args):
    """Read a fault-set JSON file and build the machine it applies to.

    The machine shape/endpoints come from the command line; when the
    fault file pins a shape (``sample`` always records one) and the user
    did not override it, the file's shape wins -- a fault set is bound to
    the machine it was drawn for.
    """
    import pathlib

    from repro.faults import FaultSet

    text = pathlib.Path(args.fault_file).read_text()
    fault_set = FaultSet.from_json(text)
    shape = args.shape or fault_set.shape
    if shape is None:
        raise ValueError(
            f"{args.fault_file} records no machine shape; pass --shape"
        )
    topology = getattr(args, "topology", None) or fault_set.topology
    machine = Machine(
        MachineConfig(
            shape=tuple(shape),
            endpoints_per_chip=args.endpoints,
            topology=topology,
        )
    )
    fault_set.validate(machine)
    return machine, fault_set


def cmd_faults_sample(args) -> int:
    from repro.faults import sample_link_faults

    machine = _machine(args)
    fault_set = sample_link_faults(
        machine,
        args.k,
        seed=args.seed,
        kinds=_fault_kinds(args.kinds),
        down_cycle=args.down,
        up_cycle=args.up,
        note=args.note,
    )
    text = fault_set.to_json(indent=2)
    if args.out == "-":
        print(text)
    else:
        with open(args.out, "w") as stream:
            stream.write(text + "\n")
        print(
            f"{len(fault_set)} link fault(s) on {'x'.join(map(str, args.shape))} "
            f"(seed {args.seed}) -> {args.out}",
            file=sys.stderr,
        )
    return 0


def _validate_topology(args) -> int:
    """Mechanical deadlock-freedom proof for one registered topology.

    ``repro faults validate --topology NAME`` (no fault file) runs the
    full bar every shipped topology must clear: the healthy machine's
    (channel, VC) dependency graph is acyclic, and it stays acyclic --
    with no pair unroutable -- under every possible single inter-node
    link failure.
    """
    from repro.core import deadlock
    from repro.faults.verify import verify_single_link_failures

    shape = args.shape or _default_validation_shape(args.topology)
    machine = Machine(
        MachineConfig(shape=shape, endpoints_per_chip=1, topology=args.topology)
    )
    report = deadlock.analyze(machine, RouteComputer(machine))
    print(
        f"topology={args.topology} shape={machine.topology.shape_str()}: "
        f"healthy dependency graph "
        f"{'acyclic (deadlock-free)' if report.deadlock_free else 'CYCLIC'} "
        f"over {report.routes} routes "
        f"(T-VCs={sorted(report.t_vcs_used)} M-VCs={sorted(report.m_vcs_used)})"
    )
    if not report.deadlock_free:
        print("cycle:", deadlock.describe_cycle(machine, report.cycle),
              file=sys.stderr)
        return 1
    sweep = verify_single_link_failures(machine)
    dead = sum(sweep.unroutable.values())
    print(
        f"single-link sweep: {sweep.checked} inter-node link failure(s), "
        f"{'all degraded graphs acyclic' if sweep.all_acyclic else 'CYCLIC: ' + str(sweep.cyclic)}, "
        f"{dead} unroutable request(s), "
        f"{len(sweep.escalations)} link(s) needed escalation beyond re-pick"
    )
    return 0 if sweep.all_acyclic and not dead else 1


def cmd_faults_validate(args) -> int:
    from repro.faults import FaultAwareRouteComputer, degraded_report

    if args.fault_file is None:
        if args.topology is None:
            args.topology = "torus"
        return _validate_topology(args)
    machine, fault_set = _load_fault_set(args)
    failed = fault_set.all_channels(machine)
    print(
        f"{len(fault_set)} fault spec(s), {len(failed)} distinct failed "
        f"channel(s) on shape {'x'.join(map(str, machine.config.shape))}: valid"
    )
    status = 0
    if args.check_routes:
        from repro.core.deadlock import enumerate_routes

        computer = FaultAwareRouteComputer(machine)
        computer.set_failed(failed)
        list(enumerate_routes(machine, computer, skip_unroutable=True))
        stages = ", ".join(
            f"{stage}={count}"
            for stage, count in sorted(computer.resolution_counts.items())
        )
        unroutable = computer.resolution_counts.get("unroutable", 0)
        print(f"route resolution: {stages or 'all primary'}")
        if unroutable:
            print(f"error: {unroutable} route request(s) unroutable",
                  file=sys.stderr)
            status = 1
    if args.check_deadlock:
        report = degraded_report(machine, fault_set)
        print(
            f"degraded dependency graph: "
            f"{'acyclic (deadlock-free)' if report.deadlock_free else 'CYCLIC'} "
            f"over {report.routes} routes"
        )
        if not report.deadlock_free:
            status = 1
    return status


def cmd_faults_run(args) -> int:
    from repro.faults import FaultPolicy, FaultRuntime
    from repro.sim.simulator import make_vc_weight_tables, make_weight_tables, run_batch
    from repro.traffic.batch import BatchSpec
    from repro.traffic.loads import compute_loads

    machine, fault_set = _load_fault_set(args)
    runtime = FaultRuntime(
        machine,
        fault_set,
        policy=FaultPolicy(mode=args.policy, max_retries=args.retries),
    )
    routes = runtime.route_computer
    pattern = _pattern_factories(machine.config.shape)[args.pattern]()
    weight_tables = vc_weight_tables = None
    if args.arbitration == "iw":
        # Degraded loads: faults break translation symmetry, so force
        # the exhaustive path when programming the arbiter weights.
        load_tables = [
            compute_loads(
                machine, routes, pattern, args.cores, use_symmetry=False
            )
        ]
        weight_tables = make_weight_tables(
            machine, routes, [pattern], args.cores, load_tables=load_tables
        )
        vc_weight_tables = make_vc_weight_tables(
            machine, routes, [pattern], args.cores, load_tables=load_tables
        )
    spec = BatchSpec(
        pattern,
        packets_per_source=args.batch,
        cores_per_chip=args.cores,
        seed=args.seed,
    )

    trace_meta = _batch_trace_meta(machine, args, pattern)
    trace_meta["faults"] = len(fault_set)
    trace_meta["policy"] = args.policy
    with _checkpointed_trace_writer(args, trace_meta) as run:
        stats = run_batch(
            machine,
            routes,
            spec,
            arbitration=args.arbitration,
            weight_tables=weight_tables,
            vc_weight_tables=vc_weight_tables,
            trace=run.writer,
            faults=runtime,
            checkpoint_path=args.checkpoint,
            checkpoint_every=run.checkpoint_every,
        )
        if run.writer is not None:
            run.writer.write_record(
                _batch_end_record(
                    stats, run.writer.events_written, faulted=True
                )
            )
    out = sys.stderr if args.trace == "-" else sys.stdout
    print(
        f"{pattern.name} / {args.arbitration} / policy={args.policy}: "
        f"{stats.delivered} delivered, {stats.dropped} dropped, "
        f"{stats.rerouted} rerouted, {stats.retried} retried "
        f"({stats.fault_events} fault events) in {stats.end_cycle} cycles",
        file=out,
    )
    return 0


def cmd_serve(args) -> int:
    import asyncio

    from repro.serve import PROTOCOL_VERSION, SessionConfig, SimServer

    config = SessionConfig(
        quantum_cycles=args.quantum,
        backpressure=args.backpressure,
        metrics_every=args.metrics_every,
    )

    async def main() -> None:
        server = SimServer(
            host=args.host,
            port=args.port,
            spool_dir=args.spool_dir,
            max_sessions=args.max_sessions,
            session_config=config,
        )
        await server.start()
        print(
            f"repro-serve listening on {server.host}:{server.port} "
            f"(proto {PROTOCOL_VERSION}, max {args.max_sessions} sessions, "
            f"spool {args.spool_dir or 'off'})",
            flush=True,
        )
        if server.counters["recovered"]:
            print(
                f"recovered {server.counters['recovered']} spooled "
                f"session(s) from {args.spool_dir}",
                flush=True,
            )
        try:
            await server.serve_forever()
        finally:
            await server.close()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    return 0


def cmd_loadtest(args) -> int:
    import asyncio
    import json
    import pathlib

    from repro.serve import LoadTestSpec, check_report, run_loadtest

    spec = LoadTestSpec(
        sessions=args.sessions,
        connections=args.connections,
        steps=args.steps,
        step_cycles=args.step_cycles,
        arrival_spread_s=args.spread,
        seed=args.seed,
    )
    report = asyncio.run(run_loadtest(spec, host=args.host, port=args.port))

    if args.out:
        pathlib.Path(args.out).write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote {args.out}", file=sys.stderr)

    client_q = report["client_latency_us"]
    server_q = report["server"]["latency_us"]
    print(
        f"{report['completed']}/{report['sessions']} sessions completed "
        f"({report['failed']} failed), peak {report['peak_live_sessions']} "
        f"live, {report['requests']} requests in {report['duration_s']}s "
        f"({report['requests_per_s']}/s)"
    )
    print(
        f"latency us  client p50/p95/p99 {client_q['p50']}/{client_q['p95']}"
        f"/{client_q['p99']}  server p50/p95/p99 {server_q['p50']}"
        f"/{server_q['p95']}/{server_q['p99']}"
    )
    if report.get("first_error"):
        print(f"first error: {report['first_error']}", file=sys.stderr)

    if args.check:
        baseline = json.loads(pathlib.Path(args.check).read_text())
        problems = check_report(report, baseline, factor=args.tolerance)
        if problems:
            for problem in problems:
                # GitHub Actions annotation format; harmless elsewhere.
                print(f"::warning title=serve regression::{problem}")
                print(f"SERVE REGRESSION: {problem}", file=sys.stderr)
            return 0 if args.soft else 2
        print(f"within {args.tolerance:g}x of {args.check}: ok")
    return 1 if report["failed"] else 0


def cmd_checkpoint_save(args) -> int:
    import contextlib

    from repro.sim.checkpoint import save_checkpoint
    from repro.sim.simulator import build_batch_engine
    from repro.sim.trace import JsonlTraceWriter
    from repro.traffic.batch import BatchSpec

    machine = _machine(args)
    routes = RouteComputer(machine)
    pattern = _pattern_factories(machine.config.shape)[args.pattern]()
    spec = BatchSpec(
        pattern,
        packets_per_source=args.batch,
        cores_per_chip=args.cores,
        seed=args.seed,
    )

    @contextlib.contextmanager
    def trace_writer():
        if args.trace is None:
            yield None
        else:
            with open(args.trace, "w") as stream:
                yield JsonlTraceWriter(
                    stream, meta=_batch_trace_meta(machine, args, pattern)
                )

    with trace_writer() as writer:
        if args.shards > 1:
            # Same bytes at args.out as the serial branch below; the
            # extra .shard<i>/.manifest files ride along (they are what
            # a sharded resume would consume).
            from repro.sim.shard import ShardedRun, save_sharded_checkpoint

            stats = save_sharded_checkpoint(
                ShardedRun(
                    config=machine.config,
                    spec=spec,
                    arbitration=args.arbitration,
                    weight_patterns=(
                        (pattern,) if args.arbitration == "iw" else ()
                    ),
                ),
                args.shards,
                args.cycles,
                args.out,
                machine=machine,
                trace=writer,
            )
            cycle = args.cycles
        else:
            engine = build_batch_engine(
                machine,
                routes,
                spec,
                arbitration=args.arbitration,
                weight_patterns=[pattern] if args.arbitration == "iw" else None,
                trace=writer,
            )
            engine.run_for(args.cycles)
            if writer is not None:
                writer.flush()
            save_checkpoint(engine, args.out)
            stats = engine.stats
            cycle = engine.cycle
    print(
        f"checkpoint at cycle {cycle}: {stats.delivered} of "
        f"{stats.injected} injected packets delivered -> {args.out}",
        file=sys.stderr,
    )
    return 0


def cmd_checkpoint_restore(args) -> int:
    from repro.sim.checkpoint import load_checkpoint, restore_engine

    data = load_checkpoint(args.checkpoint_file)
    writer = None
    if args.trace is not None:
        writer = _resume_trace_writer(args.trace, data)
    try:
        engine = restore_engine(data, trace=writer)
        stats = engine.run()
        if writer is not None:
            writer.write_record(
                _batch_end_record(
                    stats,
                    writer.events_written,
                    faulted=data.get("faults") is not None,
                )
            )
            writer.flush()
    finally:
        if writer is not None:
            writer.stream.close()
    print(
        f"resumed from cycle {data.get('cycle')}: {stats.delivered} "
        f"delivered in {stats.end_cycle} cycles",
        file=sys.stderr,
    )
    return 0


def cmd_checkpoint_info(args) -> int:
    from repro.sim.checkpoint import checkpoint_info, load_checkpoint

    info = checkpoint_info(load_checkpoint(args.checkpoint_file))
    for key, value in info.items():
        print(f"{key}: {value}")
    return 0


def _merged_profile_rows(profilers):
    """Merge one or more cProfile profilers into deterministic rows.

    Rows are ``(ncalls, 'dir/file.py:func', tottime)`` with call counts
    summed across profilers per qualified function name, sorted by
    descending count then name. Call counts are a pure function of the
    seeded simulation, so the merged table is diffable across runs.
    """
    import pstats

    merged = {}
    for profiler in profilers:
        for (filename, _lineno, funcname), (
            _cc,
            ncalls,
            tottime,
            _cumtime,
            _callers,
        ) in pstats.Stats(profiler).stats.items():
            # Qualify by the last two path components: 'sim/engine.py'
            # disambiguates the repo's several routing.py / __init__.py.
            parts = filename.replace("\\", "/").rsplit("/", 2)
            where = "/".join(parts[-2:]) if len(parts) > 1 else filename
            if where == "~" or where.startswith("<"):
                where = "<builtin>"
            entry = merged.setdefault(f"{where}:{funcname}", [0, 0.0])
            entry[0] += ncalls
            entry[1] += tottime
    rows = [
        (ncalls, name, tottime)
        for name, (ncalls, tottime) in merged.items()
    ]
    rows.sort(key=lambda row: (-row[0], row[1]))
    return rows


def cmd_profile(args) -> int:
    """Profile the engine hot path over one seeded batch run.

    The table is deterministic for a given workload: rows are call
    counts (a pure function of the seeded simulation, not of machine
    speed), sorted by descending count then name. Wall-clock and
    per-function times go to the trailing summary line only, so output
    can be diffed across runs and machines. With ``--shards N`` each
    shard worker is profiled separately (inline transport) and the
    per-shard tables are merged by summing call counts per function.
    """
    import cProfile

    from repro.sim.simulator import run_batch
    from repro.traffic.batch import BatchSpec

    machine = _machine(args)
    routes = RouteComputer(machine)
    pattern = _pattern_factories(machine.config.shape)[args.pattern]()
    spec = BatchSpec(
        pattern,
        packets_per_source=args.batch,
        cores_per_chip=args.cores,
        seed=args.seed,
    )
    if args.shards > 1:
        from repro.sim.shard import ShardedRun, run_sharded

        profilers: list = []
        stats = run_sharded(
            ShardedRun(
                config=machine.config,
                spec=spec,
                arbitration=args.arbitration,
                weight_patterns=(
                    (pattern,) if args.arbitration == "iw" else ()
                ),
            ),
            args.shards,
            machine=machine,
            transport="inline",
            profiles=profilers,
        )
    else:
        profiler = cProfile.Profile()
        profiler.enable()
        stats = run_batch(machine, routes, spec, arbitration=args.arbitration)
        profiler.disable()
        profilers = [profiler]

    rows = _merged_profile_rows(profilers)
    total_calls = sum(row[0] for row in rows)

    shard_note = f" / shards={args.shards}" if args.shards > 1 else ""
    print(
        f"profiled {pattern.name} batch x{args.batch} on "
        f"{'x'.join(str(r) for r in args.shape)} / {args.arbitration}"
        f"{shard_note}: "
        f"{stats.delivered} packets, {stats.end_cycle} cycles"
    )
    print(f"{'ncalls':>12}  function")
    for ncalls, name, _tottime in rows[: args.top]:
        print(f"{ncalls:>12,}  {name}")
    print(f"-- {total_calls:,} calls across {len(rows)} functions")
    # Wall time varies run to run; keep it off stdout so the table can
    # be diffed byte-for-byte.
    wall = sum(tottime for _n, _f, tottime in rows)
    print(f"({wall:.2f}s profiled time)", file=sys.stderr)
    return 0


def cmd_latency(args) -> int:
    from repro.models.latency import (
        LatencyModel,
        aggregate_breakdown,
        latency_vs_hops,
        linear_fit,
        minimum_internode_route,
        network_fraction,
    )

    machine = _machine(args)
    routes = RouteComputer(machine)
    model = LatencyModel()
    latencies = latency_vs_hops(machine, routes, model, max_pairs_per_distance=8)
    for hops in sorted(latencies):
        print(f"  {hops} hops: {latencies[hops]:.1f} ns")
    intercept, slope = linear_fit(latencies)
    print(f"fit: {intercept:.1f} ns + {slope:.1f} ns/hop (paper: 80.7 + 39.1)")
    route = minimum_internode_route(machine, routes)
    items = model.route_breakdown(machine, route)
    total = sum(ns for _l, ns in items)
    print(f"minimum inter-node latency: {total:.1f} ns "
          f"(network {network_fraction(items) * 100:.0f}%)")
    for label, ns in aggregate_breakdown(items):
        print(f"  {label:14s} {ns:6.2f} ns")
    return 0


def cmd_area(args) -> int:
    from repro.models.area import AreaModel, CATEGORIES

    model = AreaModel()
    print("Table 1 (% of die):")
    for component, pct in model.table1().items():
        print(f"  {component:10s} {pct:5.2f}")
    print("Table 2 (% of network area):")
    table = model.table2()
    for category in CATEGORIES:
        print(f"  {category:14s} {table[category]['Total']:5.1f}")
    return 0


def cmd_energy(args) -> int:
    from repro.models.energy import EnergyModel, energy_curve

    model = EnergyModel()
    rates = (0.1, 0.25, 0.5, 0.75, 0.9)
    for pattern in ("zeros", "ones", "random"):
        curve = energy_curve(model, pattern, rates)
        values = "  ".join(f"{rate:.2f}:{energy:6.1f}" for rate, energy in curve)
        print(f"{pattern:7s} pJ/flit  {values}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    from repro import __version__

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Anton 2 unified-network reproduction (ISCA 2014)",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_topology_arg(p):
        p.add_argument(
            "--topology",
            default="torus",
            choices=list(TOPOLOGY_CHOICES),
            help="inter-node topology (default: torus; mesh and chiplet "
                 "take KxK shapes)",
        )

    def add_machine_args(p, endpoints=4):
        p.add_argument("--shape", type=parse_shape, default=(4, 4, 4))
        p.add_argument("--endpoints", type=int, default=endpoints)
        add_topology_arg(p)

    p = sub.add_parser("info", help="machine and packaging summary")
    add_machine_args(p)
    p.set_defaults(func=cmd_info)

    p = sub.add_parser("route", help="print one route hop by hop")
    add_machine_args(p)
    p.add_argument("--src", type=parse_endpoint, required=True)
    p.add_argument("--dst", type=parse_endpoint, required=True)
    p.add_argument("--order", default="XYZ", choices=["XYZ", "XZY", "YXZ", "YZX", "ZXY", "ZYX"])
    p.add_argument("--slice", type=int, default=0, choices=[0, 1])
    p.set_defaults(func=cmd_route)

    p = sub.add_parser("search", help="Section 2.4 routing search")
    p.set_defaults(func=cmd_search)

    p = sub.add_parser("deadlock", help="Section 2.5 dependency check")
    p.add_argument("--shape", type=parse_shape, default=None,
                   help="machine shape (default: 3x3x3 torus, 3x3 mesh, "
                        "2x2 chiplet)")
    p.add_argument(
        "--scheme", default="anton", choices=["anton", "baseline", "unsafe-single"]
    )
    add_topology_arg(p)
    p.set_defaults(func=cmd_deadlock)

    p = sub.add_parser("throughput", help="one batch-throughput point")
    add_machine_args(p)
    p.add_argument(
        "--pattern",
        default="uniform",
        choices=["uniform", "1hop", "2hop", "tornado", "reverse-tornado"],
    )
    p.add_argument("--batch", type=int, default=64)
    p.add_argument("--cores", type=int, default=4)
    p.add_argument("--arbitration", default="iw", choices=["rr", "age", "iw"])
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_throughput)

    p = sub.add_parser(
        "run",
        help="run one batch, optionally sharded across worker processes",
    )
    add_machine_args(p, endpoints=2)
    p.add_argument(
        "--pattern", default="uniform", choices=list(PATTERN_CHOICES)
    )
    p.add_argument("--batch", type=int, default=8)
    p.add_argument("--cores", type=int, default=2)
    p.add_argument("--arbitration", default="rr", choices=["rr", "age", "iw"])
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--shards", type=int, default=1,
                   help="spatial shard count (1, 2, 4, or 8; results are "
                        "bit-identical across counts)")
    p.add_argument("--transport", default="process",
                   choices=["process", "inline"],
                   help="worker transport: real processes or in-process "
                        "(debug) workers")
    p.add_argument("--fault-file", default=None,
                   help="fault-set JSON file to run degraded")
    p.add_argument("--policy", default="reroute",
                   choices=["reroute", "drop"],
                   help="fault policy (retry is serial-only)")
    p.add_argument("--retries", type=int, default=4,
                   help="retry budget (unused by the sharded policies)")
    p.add_argument("--checkpoint", default=None,
                   help="periodic crash-resumable snapshot file")
    p.add_argument("--checkpoint-every", type=int, default=64,
                   help="cycles between snapshots (default: 64)")
    p.set_defaults(func=cmd_run)

    p = sub.add_parser(
        "trace", help="write a structured JSONL event trace of one batch run"
    )
    add_machine_args(p, endpoints=2)
    p.add_argument(
        "--pattern",
        default="uniform",
        choices=["uniform", "1hop", "2hop", "tornado", "reverse-tornado"],
    )
    p.add_argument("--batch", type=int, default=4)
    p.add_argument("--cores", type=int, default=2)
    p.add_argument("--arbitration", default="rr", choices=["rr", "age", "iw"])
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--window", type=int, default=256,
                   help="busy-tick window grain in cycles (default: 256)")
    p.add_argument("--out", default="-",
                   help="output JSONL path ('-' for stdout)")
    p.add_argument("--golden", default=None,
                   help="regenerate one canonical golden trace by name")
    p.add_argument("--list-goldens", action="store_true",
                   help="list canonical golden trace names and exit")
    p.add_argument("--shards", type=int, default=1,
                   help="regenerate a --golden trace via the sharded "
                        "runner (bytes must not change)")
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser(
        "demand",
        help="run a demand-matrix workload (seeded generators, rate epochs)",
    )
    add_machine_args(p, endpoints=2)
    p.add_argument(
        "--generator",
        default="hotspot",
        choices=[
            "uniform", "hotspot", "skew", "permutation", "adversarial", "file",
        ],
        help="demand-matrix generator (default: hotspot)",
    )
    p.add_argument("--rate", type=float, default=0.25,
                   help="per-source row-sum rate in packets/cycle "
                        "(default: 0.25)")
    p.add_argument("--hotspots", type=int, default=1,
                   help="hot node count for --generator hotspot")
    p.add_argument("--hot-fraction", type=float, default=0.5,
                   help="rate fraction aimed at the hot nodes")
    p.add_argument("--skew-exponent", type=float, default=1.0,
                   help="Zipf exponent for --generator skew")
    p.add_argument("--matrix-seed", type=int, default=0,
                   help="matrix-generation seed (epoch k uses seed + k)")
    p.add_argument("--matrix-file", default=None,
                   help="demand-matrix JSON file for --generator file")
    p.add_argument("--restarts", type=int, default=3,
                   help="adversarial search restarts (default: 3)")
    p.add_argument("--steps", type=int, default=60,
                   help="adversarial hill-climb steps per restart")
    p.add_argument("--epochs", type=int, default=1,
                   help="number of piecewise-constant rate epochs")
    p.add_argument("--epoch-length", type=int, default=64,
                   help="cycles per epoch when --epochs > 1 (default: 64)")
    p.add_argument("--mode", default="open", choices=["open", "closed"])
    p.add_argument("--duration", type=int, default=256,
                   help="open-loop injection window in cycles (default: 256)")
    p.add_argument("--scale", type=float, default=1.0,
                   help="closed-loop packets per unit row sum (default: 1)")
    p.add_argument("--injection", default="bernoulli",
                   choices=["bernoulli", "paced"])
    p.add_argument("--cores", type=int, default=2)
    p.add_argument("--arbitration", default="rr", choices=["rr", "age", "iw"])
    p.add_argument("--seed", type=int, default=0,
                   help="injection/route sampling seed")
    p.add_argument("--trace", default=None,
                   help="write a JSONL event trace ('-' for stdout)")
    p.add_argument("--checkpoint", default=None,
                   help="periodic engine snapshot file (crash resumable)")
    p.add_argument("--checkpoint-every", type=int, default=64,
                   help="cycles between snapshots (default: 64)")
    p.add_argument("--resume", action="store_true",
                   help="resume an interrupted run from --checkpoint")
    p.add_argument("--fault-file", default=None,
                   help="fault-set JSON file to run degraded")
    p.add_argument("--policy", default="reroute",
                   choices=["reroute", "drop", "retry"])
    p.add_argument("--retries", type=int, default=4,
                   help="retry budget for --policy retry (default: 4)")
    p.set_defaults(func=cmd_demand)

    p = sub.add_parser(
        "replay", help="re-simulate a recorded JSONL trace byte-for-byte"
    )
    p.add_argument("trace_file", help="JSONL trace to replay")
    p.add_argument("--trace", default=None,
                   help="write the replayed trace ('-' for stdout)")
    p.add_argument("--arbitration", default=None,
                   choices=["rr", "age", "iw"],
                   help="override the trace header's arbitration policy")
    p.add_argument("--verify", action="store_true",
                   help="exit 1 unless the replay is byte-identical")
    p.set_defaults(func=cmd_replay)

    p = sub.add_parser(
        "serve",
        help="serve concurrent simulation sessions over NDJSON/TCP",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=7777,
                   help="TCP port (0 picks an ephemeral port; default 7777)")
    p.add_argument("--spool-dir", default=None,
                   help="checkpoint spool directory (enables LRU eviction "
                        "and crash recovery)")
    p.add_argument("--max-sessions", type=int, default=1024,
                   help="live-session table size (default: 1024)")
    p.add_argument("--quantum", type=int, default=256,
                   help="cycles per session scheduling quantum (default: 256)")
    p.add_argument("--backpressure", default="drop-oldest",
                   choices=["drop-oldest", "pause"],
                   help="policy when a subscriber's outbound queue fills")
    p.add_argument("--metrics-every", type=int, default=0,
                   help="default metrics-stream cadence in cycles "
                        "(0: only per-subscriber cadences)")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "loadtest",
        help="drive many concurrent sessions; report latency quantiles",
    )
    p.add_argument("--host", default=None,
                   help="external server host (default: in-process server)")
    p.add_argument("--port", type=int, default=None,
                   help="external server port")
    p.add_argument("--sessions", type=int, default=500)
    p.add_argument("--connections", type=int, default=16,
                   help="pooled client connections (default: 16)")
    p.add_argument("--steps", type=int, default=2,
                   help="step requests per session (default: 2)")
    p.add_argument("--step-cycles", type=int, default=64)
    p.add_argument("--spread", type=float, default=0.25,
                   help="seeded arrival spread in seconds (default: 0.25)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--out", default=None,
                   help="write the BENCH_serve.json report here")
    p.add_argument("--check", default=None,
                   help="soft-gate against a committed baseline report")
    p.add_argument("--tolerance", type=float, default=5.0,
                   help="allowed p99 latency factor vs baseline (default: 5)")
    p.add_argument("--soft", action="store_true",
                   help="report regressions as warnings but exit 0")
    p.set_defaults(func=cmd_loadtest)

    p = sub.add_parser(
        "faults", help="sample, validate, and run degraded-topology fault sets"
    )
    fsub = p.add_subparsers(dest="faults_command", required=True)

    fp = fsub.add_parser("sample", help="draw a seeded random fault set")
    add_machine_args(fp, endpoints=2)
    fp.add_argument("-k", type=int, default=1, help="number of link faults")
    fp.add_argument("--seed", type=int, default=0)
    fp.add_argument(
        "--kinds",
        nargs="+",
        default=["torus"],
        choices=FAULT_KIND_NAMES,
        help="channel kinds eligible to fail (default: torus)",
    )
    fp.add_argument("--down", type=int, default=0,
                    help="cycle the links fail (0: before the run)")
    fp.add_argument("--up", type=int, default=None,
                    help="cycle the links recover (default: never)")
    fp.add_argument("--note", default="", help="free-form note stored in the set")
    fp.add_argument("--out", default="-",
                    help="output JSON path ('-' for stdout)")
    fp.set_defaults(func=cmd_faults_sample)

    fp = fsub.add_parser(
        "validate",
        help="check a fault set against a machine, or (with no fault "
             "file) mechanically verify a topology's deadlock freedom",
    )
    fp.add_argument("fault_file", nargs="?", default=None,
                    help="fault-set JSON file; omit to run the topology "
                         "deadlock + single-link-failure verification")
    fp.add_argument("--shape", type=parse_shape, default=None,
                    help="override the machine shape (default: the "
                         "file's, or a small per-topology default)")
    fp.add_argument("--endpoints", type=int, default=2)
    fp.add_argument("--topology", default=None,
                    choices=list(TOPOLOGY_CHOICES),
                    help="inter-node topology (default: the fault "
                         "file's, else torus)")
    fp.add_argument("--check-routes", action="store_true",
                    help="resolve every degraded route; fail on unroutable")
    fp.add_argument("--check-deadlock", action="store_true",
                    help="verify the degraded dependency graph is acyclic")
    fp.set_defaults(func=cmd_faults_validate)

    fp = fsub.add_parser("run", help="run one batch on the degraded machine")
    fp.add_argument("fault_file", help="fault-set JSON file")
    fp.add_argument("--shape", type=parse_shape, default=None,
                    help="override the machine shape (default: the file's)")
    fp.add_argument("--endpoints", type=int, default=2)
    fp.add_argument("--topology", default=None,
                    choices=list(TOPOLOGY_CHOICES),
                    help="inter-node topology (default: the fault file's)")
    fp.add_argument(
        "--pattern", default="uniform", choices=list(PATTERN_CHOICES)
    )
    fp.add_argument("--batch", type=int, default=8)
    fp.add_argument("--cores", type=int, default=2)
    fp.add_argument("--arbitration", default="rr", choices=["rr", "age", "iw"])
    fp.add_argument("--policy", default="reroute",
                    choices=["reroute", "drop", "retry"])
    fp.add_argument("--retries", type=int, default=4,
                    help="retry budget for --policy retry (default: 4)")
    fp.add_argument("--seed", type=int, default=0)
    fp.add_argument("--trace", default=None,
                    help="also write a JSONL event trace ('-' for stdout)")
    fp.add_argument("--checkpoint", default=None,
                    help="periodic engine snapshot file (crash resumable)")
    fp.add_argument("--checkpoint-every", type=int, default=64,
                    help="cycles between snapshots (default: 64)")
    fp.add_argument("--resume", action="store_true",
                    help="resume an interrupted run from --checkpoint")
    fp.set_defaults(func=cmd_faults_run)

    p = sub.add_parser(
        "checkpoint", help="save, resume, and inspect engine snapshots"
    )
    csub = p.add_subparsers(dest="checkpoint_command", required=True)

    cp = csub.add_parser("save", help="run a batch N cycles, then snapshot")
    add_machine_args(cp, endpoints=2)
    cp.add_argument(
        "--pattern", default="uniform", choices=list(PATTERN_CHOICES)
    )
    cp.add_argument("--batch", type=int, default=4)
    cp.add_argument("--cores", type=int, default=2)
    cp.add_argument("--arbitration", default="rr", choices=["rr", "age", "iw"])
    cp.add_argument("--seed", type=int, default=0)
    cp.add_argument("--cycles", type=int, required=True,
                    help="cycles to run before snapshotting")
    cp.add_argument("--trace", default=None,
                    help="also write the partial JSONL event trace")
    cp.add_argument("--out", default="checkpoint.json",
                    help="snapshot output path (default: checkpoint.json)")
    cp.add_argument("--shards", type=int, default=1,
                    help="snapshot via the sharded runner; --out bytes "
                         "match the serial snapshot at the same cycle")
    cp.set_defaults(func=cmd_checkpoint_save)

    cp = csub.add_parser("restore", help="resume a snapshot to completion")
    cp.add_argument("checkpoint_file", help="snapshot written by 'save'")
    cp.add_argument("--trace", default=None,
                    help="trace file to truncate to the snapshot and extend")
    cp.set_defaults(func=cmd_checkpoint_restore)

    cp = csub.add_parser("info", help="print a snapshot summary")
    cp.add_argument("checkpoint_file", help="snapshot written by 'save'")
    cp.set_defaults(func=cmd_checkpoint_info)

    p = sub.add_parser(
        "profile", help="profile the engine hot path over one seeded batch"
    )
    add_machine_args(p)
    p.add_argument(
        "--pattern",
        default="uniform",
        choices=["uniform", "1hop", "2hop", "tornado", "reverse-tornado"],
    )
    p.add_argument("--batch", type=int, default=32)
    p.add_argument("--cores", type=int, default=4)
    p.add_argument("--arbitration", default="rr", choices=["rr", "age", "iw"])
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--top", type=int, default=25,
                   help="rows in the hot-function table (default: 25)")
    p.add_argument("--shards", type=int, default=1,
                   help="profile shard workers and merge their tables "
                        "(call counts summed per function)")
    p.set_defaults(func=cmd_profile)

    p = sub.add_parser("latency", help="Figure 11/12 latency model")
    add_machine_args(p, endpoints=2)
    p.set_defaults(func=cmd_latency)

    p = sub.add_parser("area", help="Tables 1 and 2")
    p.set_defaults(func=cmd_area)

    p = sub.add_parser("energy", help="Figure 13 energy curves")
    p.set_defaults(func=cmd_energy)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (ValueError, KeyError, OSError, RuntimeError) as exc:
        # Operational failures (bad fault files, unroutable requests,
        # missing paths) become a one-line diagnostic and exit code 1;
        # anything else is a genuine bug and keeps its traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
