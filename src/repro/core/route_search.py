"""The on-chip routing-algorithm search of Section 2.4 (Figure 4).

The ASIC should emulate a perfect switch between its external torus
channels. The on-chip local routing algorithm was chosen by evaluating
every *direction-order* algorithm against every possible switching demand
and picking the one that minimizes the worst-case load on any mesh
channel. Because the maximum load over the demand polytope (nonnegative
demands with unit row/column sums) is always attained at an extreme
point, and extreme points are permutations [Towles & Dally 2002], the
search reduces to enumerating the 24 direction orders against the
permutations of the six torus directions (slices assumed load-balanced).

This module reproduces the search's two published findings:

* the order **V-, U+, U-, V+** minimizes the worst-case mesh load, and
* the worst case for *every* direction order is permutation (1),

      X+ X- Y+ Y-  Z+ Z-
      Z- X+ Y- Z+  X- Y+

  under which the best algorithm loads its heaviest mesh channel with
  exactly **two** torus channels' worth of traffic (Figure 4) -- which a
  288 Gb/s mesh channel absorbs with headroom against two 89.6 Gb/s
  torus channels.

An ablation mode (``use_skip=False``) shows what happens without the skip
channels: X through traffic must cross the mesh, raising the worst-case
load.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from . import params
from .chip import ChipFloorplan, default_floorplan
from .geometry import Coord2, TORUS_DIRECTIONS, TorusDirection
from .onchip import (
    ANTON_DIRECTION_ORDER,
    all_direction_orders,
    direction_order_name,
    mesh_route_links,
)

#: A switching demand: traffic entering on one external channel and
#: leaving on another, identified by their direction labels.
DemandPair = Tuple[TorusDirection, TorusDirection]

#: A permutation demand: a destination direction for each source direction,
#: in the canonical order of TORUS_DIRECTIONS.
Permutation = Tuple[TorusDirection, ...]

#: The paper's common worst-case permutation (1):
#: X+->Z-, X- ->X+, Y+->Y-, Y- ->Z+, Z+->X-, Z- ->Y+.
PAPER_WORST_CASE: Permutation = tuple(
    {
        "X+": "Z-",
        "X-": "X+",
        "Y+": "Y-",
        "Y-": "Z+",
        "Z+": "X-",
        "Z-": "Y+",
    }[str(direction)]
    for direction in TORUS_DIRECTIONS
)


def _parse_direction(label: str) -> TorusDirection:
    for direction in TORUS_DIRECTIONS:
        if str(direction) == label:
            return direction
    raise ValueError(f"unknown direction label {label!r}")


# Resolve the string table above into TorusDirection objects once.
PAPER_WORST_CASE = tuple(
    _parse_direction(entry) if isinstance(entry, str) else entry
    for entry in PAPER_WORST_CASE
)


@dataclasses.dataclass(frozen=True)
class DemandRoute:
    """The on-chip resources used by one switching-demand flow."""

    mesh_links: Tuple[Tuple[Coord2, Coord2], ...]
    uses_skip: bool


def demand_route(
    floorplan: ChipFloorplan,
    src: TorusDirection,
    dst: TorusDirection,
    slice_index: int,
    order: Sequence = ANTON_DIRECTION_ORDER,
    use_skip: bool = True,
) -> DemandRoute:
    """The on-chip route of traffic entering channel ``src`` and leaving
    channel ``dst`` on one slice.

    Traffic "entering channel src" arrives at the adapter labeled ``src``
    (a packet traveling X+ arrives on the X- channel, so a through X+
    demand is the pair ``X- -> X+``). X through pairs take the skip
    channel; everything else follows the direction-order mesh route
    between the two adapters' routers.
    """
    entry = floorplan.channel_adapter_router[(src, slice_index)]
    exit_ = floorplan.channel_adapter_router[(dst, slice_index)]
    if entry == exit_:
        return DemandRoute(mesh_links=(), uses_skip=False)
    if use_skip and floorplan.skip_for(entry, exit_):
        return DemandRoute(mesh_links=(), uses_skip=True)
    return DemandRoute(
        mesh_links=tuple(mesh_route_links(entry, exit_, order)),
        uses_skip=False,
    )


def permutation_mesh_loads(
    floorplan: ChipFloorplan,
    permutation: Permutation,
    order: Sequence = ANTON_DIRECTION_ORDER,
    use_skip: bool = True,
) -> Dict[Tuple[int, Coord2, Coord2], float]:
    """Mesh-channel loads induced by a permutation demand on both slices.

    Keys are ``(slice, from_router, to_router)``; each demand contributes
    one torus channel's worth of load to every mesh link on its route.
    """
    loads: Dict[Tuple[int, Coord2, Coord2], float] = {}
    for slice_index in range(params.NUM_SLICES):
        for src, dst in zip(TORUS_DIRECTIONS, permutation):
            route = demand_route(floorplan, src, dst, slice_index, order, use_skip)
            for link in route.mesh_links:
                key = (slice_index, link[0], link[1])
                loads[key] = loads.get(key, 0.0) + 1.0
    return loads


def max_mesh_load(
    floorplan: ChipFloorplan,
    permutation: Permutation,
    order: Sequence = ANTON_DIRECTION_ORDER,
    use_skip: bool = True,
) -> float:
    """The heaviest mesh-channel load induced by a permutation."""
    loads = permutation_mesh_loads(floorplan, permutation, order, use_skip)
    return max(loads.values(), default=0.0)


def all_permutations() -> Iterable[Permutation]:
    """All 720 permutations of the six torus directions."""
    return itertools.permutations(TORUS_DIRECTIONS)


@dataclasses.dataclass
class OrderResult:
    """Worst-case evaluation of one direction-order algorithm."""

    order: Tuple
    worst_load: float
    worst_permutations: List[Permutation]
    #: Mean (over all permutations) of the maximum mesh-channel load; a
    #: robustness tie-break between orders with equal worst case.
    mean_max_load: float = 0.0

    @property
    def name(self) -> str:
        return direction_order_name(self.order)

    @property
    def num_worst(self) -> int:
        """How many permutations attain the worst-case load."""
        return len(self.worst_permutations)

    @property
    def rank_key(self):
        """Lexicographic quality key: worst case first, then how often the
        worst case is hit, then the mean maximum load."""
        return (self.worst_load, self.num_worst, self.mean_max_load)


@dataclasses.dataclass
class SearchResult:
    """Outcome of the full routing-algorithm search."""

    per_order: List[OrderResult]

    @property
    def best(self) -> OrderResult:
        """An optimal direction order (minimal rank key)."""
        return min(self.per_order, key=lambda r: r.rank_key)

    @property
    def best_orders(self) -> List[OrderResult]:
        """All direction orders tied for the best rank key.

        With the reconstructed floorplan these form an equivalence class
        of twelve orders (related by the chip's layout symmetries) that
        contains the paper's V-, U+, U-, V+.
        """
        best_key = self.best.rank_key
        return [r for r in self.per_order if r.rank_key == best_key]

    @property
    def worst_order(self) -> OrderResult:
        return max(self.per_order, key=lambda r: r.worst_load)

    def result_for(self, order: Sequence) -> OrderResult:
        name = direction_order_name(order)
        for result in self.per_order:
            if result.name == name:
                return result
        raise KeyError(f"order {name} not in search results")

    def common_worst_permutations(self) -> List[Permutation]:
        """Permutations that are worst-case for *every* direction order.

        The paper reports that permutation (1) is such a common worst
        case.
        """
        common: Optional[set] = None
        for result in self.per_order:
            worst = set(result.worst_permutations)
            common = worst if common is None else common & worst
        return sorted(common or set())


def search_direction_orders(
    floorplan: Optional[ChipFloorplan] = None,
    use_skip: bool = True,
) -> SearchResult:
    """Evaluate every direction-order algorithm against every permutation.

    Returns per-order worst-case mesh loads and the permutations that
    attain them. With the default floorplan and skip channels enabled,
    the best orders have worst-case load 2.0 (two torus channels per mesh
    channel) and include V-, U+, U-, V+.
    """
    floorplan = floorplan or default_floorplan()
    permutations = list(all_permutations())
    per_order: List[OrderResult] = []
    for order in all_direction_orders():
        worst = 0.0
        total = 0.0
        worst_permutations: List[Permutation] = []
        for permutation in permutations:
            load = max_mesh_load(floorplan, permutation, order, use_skip)
            total += load
            if load > worst + 1e-12:
                worst = load
                worst_permutations = [permutation]
            elif abs(load - worst) <= 1e-12:
                worst_permutations.append(permutation)
        per_order.append(
            OrderResult(
                order=tuple(order),
                worst_load=worst,
                worst_permutations=worst_permutations,
                mean_max_load=total / len(permutations),
            )
        )
    return SearchResult(per_order=per_order)


def format_permutation(permutation: Permutation) -> str:
    """Render a permutation the way the paper's equation (1) does."""
    top = "  ".join(f"{str(s):>2}" for s in TORUS_DIRECTIONS)
    bottom = "  ".join(f"{str(d):>2}" for d in permutation)
    return f"({top})\n({bottom})"
