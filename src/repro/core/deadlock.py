"""Constructive deadlock-freedom verification (Section 2.5).

The Anton 2 network avoids deadlock by ensuring that the dependency
relation between (channel, VC) pairs is acyclic [Dally & Seitz 1987]. The
paper proves this for its VC promotion algorithm; this module *checks* it
mechanically for any machine and VC scheme by:

1. enumerating every legal route (all source/destination endpoint pairs,
   all dimension orders, both slices, and both tie-break directions for
   even-radix half-way destinations);
2. adding a dependency edge for every consecutive hop pair
   ``(channel_a, vc_a) -> (channel_b, vc_b)``; and
3. testing the resulting directed graph for cycles with networkx.

Endpoint-adapter links are excluded: injection links have no
predecessors and ejection links no successors, so they cannot extend a
cycle (and a delivered packet always drains).

The checker is the evidence behind the Section 2.5 claims reproduced in
``benchmarks/bench_sec25_vc_ablation.py``: both the Anton scheme (n + 1
VCs) and the baseline (2n VCs) are acyclic, the Anton scheme touches only
4 distinct VCs per class, and the single-VC negative control contains
cycles.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Set, Tuple

import networkx as nx

from .machine import ChannelGroup, Machine
from .routing import Route, RouteComputer, Unroutable
from .geometry import all_coords


@dataclasses.dataclass
class DeadlockReport:
    """Result of a dependency-graph analysis."""

    #: Whether the (channel, VC) dependency graph is acyclic.
    deadlock_free: bool
    #: One dependency cycle (as (channel id, vc) nodes) if any exists.
    cycle: Optional[List[Tuple[int, int]]]
    #: Number of dependency-graph nodes actually used by some route.
    nodes: int
    #: Number of distinct dependency edges.
    edges: int
    #: Distinct VCs used on T-group channels.
    t_vcs_used: Set[int]
    #: Distinct VCs used on M-group channels.
    m_vcs_used: Set[int]
    #: Number of routes enumerated.
    routes: int


def enumerate_routes(
    machine: Machine,
    route_computer: RouteComputer,
    endpoints_per_chip: Optional[int] = None,
    skip_unroutable: bool = False,
):
    """Yield every legal route between the selected endpoints.

    ``endpoints_per_chip`` limits the endpoints considered per chip
    (default: all of them). Every dimension order, slice, and minimal
    tie-break combination is enumerated via
    :meth:`RouteComputer.all_choices`. With a fault-aware route computer
    each yielded route is the degraded machine's resolution of that
    choice; ``skip_unroutable`` silently omits pairs the degraded machine
    cannot connect (otherwise :class:`Unroutable` propagates).
    """
    count = endpoints_per_chip or machine.config.endpoints_per_chip
    chips = list(all_coords(machine.config.shape))
    for src_chip in chips:
        for src_index in range(count):
            src_ep = machine.ep_id[(src_chip, src_index)]
            for dst_chip in chips:
                for dst_index in range(count):
                    dst_ep = machine.ep_id[(dst_chip, dst_index)]
                    if dst_ep == src_ep:
                        continue
                    for choice, _prob in route_computer.all_choices(
                        src_chip, dst_chip
                    ):
                        try:
                            yield route_computer.compute(src_ep, dst_ep, choice)
                        except Unroutable:
                            if not skip_unroutable:
                                raise


def route_dependency_edges(
    machine: Machine, route: Route
) -> List[Tuple[Tuple[int, int], Tuple[int, int]]]:
    """The (channel, VC) dependency edges contributed by one route.

    Edges through endpoint-adapter links are skipped (sources and sinks
    cannot deadlock).
    """
    channels = machine.channels
    edges: List[Tuple[Tuple[int, int], Tuple[int, int]]] = []
    prev = None
    for channel_id, vc in route.hops:
        if channels[channel_id].group == ChannelGroup.E:
            prev = None
            continue
        node = (channel_id, vc)
        if prev is not None:
            edges.append((prev, node))
        prev = node
    return edges


def build_dependency_graph_from_routes(
    machine: Machine, routes
) -> Tuple[nx.DiGraph, int]:
    """The (channel, VC) dependency graph over an explicit route set.

    Returns the graph and the number of routes consumed. Used both by the
    healthy-machine analysis and by the fault subsystem, which passes the
    degraded machine's resolved route set.
    """
    graph = nx.DiGraph()
    edges: Set[Tuple[Tuple[int, int], Tuple[int, int]]] = set()
    count = 0
    for route in routes:
        count += 1
        edges.update(route_dependency_edges(machine, route))
    graph.add_edges_from(edges)
    return graph, count


def build_dependency_graph(
    machine: Machine,
    route_computer: RouteComputer,
    endpoints_per_chip: Optional[int] = None,
) -> Tuple[nx.DiGraph, int]:
    """The (channel, VC) dependency graph over all enumerated routes."""
    return build_dependency_graph_from_routes(
        machine, enumerate_routes(machine, route_computer, endpoints_per_chip)
    )


def analyze_routes(machine: Machine, routes) -> DeadlockReport:
    """Deadlock analysis over an explicit (possibly degraded) route set."""
    graph, count = build_dependency_graph_from_routes(machine, routes)
    return _report_from_graph(machine, graph, count)


def analyze(
    machine: Machine,
    route_computer: RouteComputer,
    endpoints_per_chip: Optional[int] = None,
) -> DeadlockReport:
    """Run the full deadlock analysis for a machine's VC scheme."""
    graph, routes = build_dependency_graph(
        machine, route_computer, endpoints_per_chip
    )
    return _report_from_graph(machine, graph, routes)


def _report_from_graph(
    machine: Machine, graph: nx.DiGraph, routes: int
) -> DeadlockReport:
    cycle: Optional[List[Tuple[int, int]]] = None
    try:
        raw_cycle = nx.find_cycle(graph)
        cycle = [edge[0] for edge in raw_cycle]
    except nx.NetworkXNoCycle:
        pass
    t_vcs: Set[int] = set()
    m_vcs: Set[int] = set()
    for channel_id, vc in graph.nodes:
        group = machine.channels[channel_id].group
        if group == ChannelGroup.T:
            t_vcs.add(vc)
        elif group == ChannelGroup.M:
            m_vcs.add(vc)
    return DeadlockReport(
        deadlock_free=cycle is None,
        cycle=cycle,
        nodes=graph.number_of_nodes(),
        edges=graph.number_of_edges(),
        t_vcs_used=t_vcs,
        m_vcs_used=m_vcs,
        routes=routes,
    )


def describe_cycle(machine: Machine, cycle: List[Tuple[int, int]]) -> str:
    """Human-readable rendering of a dependency cycle (for diagnostics)."""
    parts = []
    for channel_id, vc in cycle:
        channel = machine.channels[channel_id]
        src = machine.components[channel.src]
        dst = machine.components[channel.dst]
        parts.append(f"{src}->{dst} vc{vc}")
    return " => ".join(parts)
