"""Inter-node topology abstraction: torus, 2D mesh, and chiplet.

The paper's central claim is that one switching/VC-promotion discipline
serves both the on-chip mesh and the inter-node network. This module
factors the *inter-node* part of that claim behind a small interface so
the same engine, arbiters, route builder, and mechanical deadlock
machinery carry to other unified hierarchies:

* :class:`TorusTopology` -- the paper's channel-sliced 3D torus (the
  default; every method delegates to the exact :mod:`repro.core.geometry`
  primitives, so the torus path is bit-for-bit unchanged by the
  abstraction);
* :class:`Mesh2DTopology` -- a standalone 2D mesh of nodes. No dimension
  wraps, so the dateline is *degenerate*: :meth:`Topology.crosses_dateline`
  is identically false and the escape (promoted-by-crossing) VC is never
  entered via rule 1. This is proven mechanically, not assumed -- the
  property suite asserts zero crossings over every mesh route, and the
  CDG analysis passes with the same allocator;
* :class:`ChipletTopology` -- a package of chiplets on an interposer:
  each node keeps the Anton 2 on-chip mesh NoC and channel adapters
  (:mod:`repro.core.chip`), while the inter-node channels model short
  interposer (NoI) links -- lower latency and higher bandwidth than the
  torus cables, and no wraparound. A second "unified on-chip +
  inter-node" hierarchy in the paper's spirit.

Every dimension of a topology is either a **ring** (wraps; carries a
dateline between coordinates ``k - 1`` and ``0``) or a **line** (does not
wrap; no dateline, and monotone displacement equals the unique minimal
displacement). The route builder, fault-aware escalation, and analytic
load computation only consume the per-dimension queries below, so a new
topology is one subclass plus a registry entry -- and it inherits the
conformance suite under ``tests/properties/`` for free.
"""

from __future__ import annotations

import abc
from fractions import Fraction
from typing import ClassVar, Dict, Optional, Sequence, Tuple, Type

from . import params
from .geometry import (
    Coord3,
    TORUS_DIRECTIONS,
    TorusDirection,
    crosses_dateline,
    minimal_deltas,
    ring_deltas,
    torus_delta,
    validate_shape,
)


class Topology(abc.ABC):
    """Per-dimension semantics of one inter-node network.

    Instances are immutable and bound to a normalized 3-tuple ``shape``
    (2D topologies pad a degenerate third dimension of radix 1, so every
    coordinate in the system remains a :data:`~repro.core.geometry.Coord3`
    and the engine, checkpoint schema, and trace format are untouched).
    """

    #: Registry key and CLI name of the topology.
    name: ClassVar[str] = ""
    #: Number of user-facing shape axes (3 for the torus, 2 for mesh and
    #: chiplet; the normalized shape is always a 3-tuple).
    num_axes: ClassVar[int] = 3
    #: Largest per-dimension radix this topology supports.
    max_radix: ClassVar[int] = params.MAX_TORUS_RADIX

    def __init__(self, shape: Sequence[int]) -> None:
        self.shape: Coord3 = self.normalize_shape(shape)

    # --- shape ------------------------------------------------------------

    @classmethod
    def normalize_shape(cls, shape: Sequence[int]) -> Coord3:
        """Validate a shape and return it as a normalized 3-tuple.

        Accepts ``num_axes`` axes, or a 3-tuple whose surplus trailing
        axes are radix 1 (the normalized rendering round-trips).
        """
        shape = tuple(int(k) for k in shape)
        if len(shape) == 3 and cls.num_axes == 2:
            if shape[2] != 1:
                raise ValueError(
                    f"{cls.name} topology is two-dimensional; the third "
                    f"axis must have radix 1, got shape {shape!r}"
                )
            shape = shape[:2]
        return validate_shape(
            shape, max_radix=cls.max_radix, num_dims=cls.num_axes
        )

    # --- per-dimension ring/line semantics --------------------------------

    @abc.abstractmethod
    def wraps(self, dim: int) -> bool:
        """Whether dimension ``dim`` is a ring (wraps) or a line."""

    def minimal_deltas(self, src: int, dst: int, dim: int) -> Tuple[int, ...]:
        """All minimal signed displacements from ``src`` to ``dst``.

        Rings may return two (the half-way tie of an even radix); lines
        always return exactly one.
        """
        if self.wraps(dim):
            return minimal_deltas(src, dst, self.shape[dim])
        return (dst - src,)

    def monotone_deltas(self, src: int, dst: int, dim: int) -> Tuple[int, ...]:
        """All monotone displacements, including non-minimal fallbacks.

        On a ring this adds the long way around (still crossing the
        dateline at most once, so the Section 2.5 argument holds); on a
        line the unique minimal displacement is the only monotone one --
        there is no second way along a line, so fault escalation goes
        straight from re-pick to the two-phase detour.
        """
        if self.wraps(dim):
            return ring_deltas(src, dst, self.shape[dim])
        return (dst - src,)

    def delta(self, src: int, dst: int, dim: int) -> int:
        """The canonical (tie-break toward ``+``) signed displacement."""
        if self.wraps(dim):
            return torus_delta(src, dst, self.shape[dim])
        return dst - src

    def crosses_dateline(self, dim: int, src: int, delta: int) -> bool:
        """Whether moving ``delta`` from ``src`` crosses dimension
        ``dim``'s dateline. Identically false on line dimensions -- the
        degenerate dateline the mesh topology proves harmless."""
        if self.wraps(dim):
            return crosses_dateline(src, delta, self.shape[dim])
        return False

    def crossing_step(self, dim: int, coord: int, next_coord: int) -> bool:
        """Whether a single hop ``coord -> next_coord`` crosses the
        dateline (the exact per-hop test the route builder applies)."""
        if not self.wraps(dim):
            return False
        radix = self.shape[dim]
        return (coord == radix - 1 and next_coord == 0) or (
            coord == 0 and next_coord == radix - 1
        )

    # --- links ------------------------------------------------------------

    def neighbor(self, chip: Coord3, direction: TorusDirection) -> Optional[Coord3]:
        """The coordinate one hop away, or ``None`` off a line's edge."""
        dim = direction.dim
        radix = self.shape[dim]
        nxt = chip[dim] + direction.sign
        if self.wraps(dim):
            nxt %= radix
        elif not 0 <= nxt < radix:
            return None
        coords = list(chip)
        coords[dim] = nxt
        return tuple(coords)

    def has_link(self, chip: Coord3, direction: TorusDirection) -> bool:
        """Whether an inter-node channel leaves ``chip`` in ``direction``."""
        if self.shape[direction.dim] < 2:
            return False
        return self.neighbor(chip, direction) is not None

    def active_directions(self) -> Tuple[TorusDirection, ...]:
        """The inter-node directions with any channel instantiated."""
        return tuple(
            d for d in TORUS_DIRECTIONS if self.shape[d.dim] >= 2
        )

    def hops(self, src: Coord3, dst: Coord3) -> int:
        """Minimal inter-node hop count between two coordinates."""
        return sum(
            abs(self.delta(src[d], dst[d], d)) for d in range(3)
        )

    # --- symmetry and channel parameters ----------------------------------

    @property
    def translation_invariant(self) -> bool:
        """Whether the machine graph is invariant under coordinate
        translation (true only when every dimension wraps). The analytic
        load computation may exploit this; line topologies must use the
        exhaustive enumeration."""
        return all(self.wraps(d) for d in range(3))

    def internode_latency(self, config) -> int:
        """Latency (cycles) of one inter-node channel."""
        return config.torus_latency

    def internode_cycles_per_flit(self, config) -> Fraction:
        """Serialization cost (cycles per flit) of one inter-node channel."""
        return config.torus_cycles_per_flit

    # --- cosmetics ---------------------------------------------------------

    def shape_str(self) -> str:
        """The user-facing shape rendering (2D topologies drop the pad)."""
        axes = self.shape[: self.num_axes]
        return "x".join(str(k) for k in axes)

    def describe(self) -> str:
        return f"{self.name} {self.shape_str()}"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.shape!r})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Topology)
            and type(other) is type(self)
            and other.shape == self.shape
        )

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.shape))


class TorusTopology(Topology):
    """The paper's 3D torus: every dimension is a ring with a dateline."""

    name = "torus"
    num_axes = 3
    max_radix = params.MAX_TORUS_RADIX

    def wraps(self, dim: int) -> bool:
        return True


class Mesh2DTopology(Topology):
    """A standalone 2D mesh of nodes: two line dimensions, no datelines.

    Minimal routing on a line never wraps, so rule 1 of the promotion
    algorithm (dateline crossing) is unreachable; the VC still advances
    via rule 2 (dimension completion), and the CDG analysis proves the
    resulting route set acyclic with the same ``n + 1``-VC allocator.
    """

    name = "mesh"
    num_axes = 2
    max_radix = params.MAX_TORUS_RADIX

    def wraps(self, dim: int) -> bool:
        return False


class ChipletTopology(Topology):
    """Chiplets on an interposer: per-chip NoC plus a 2D-mesh NoI.

    Each node is a full Anton 2 chip (4 x 4 mesh, skip channels, channel
    adapters); the inter-node channels model interposer traces instead of
    torus cables: :data:`INTERPOSER_LATENCY` cycles of wire latency and
    :data:`INTERPOSER_CYCLES_PER_FLIT` cycles per flit (an interposer
    link is wide and short -- 2/3 of the on-chip mesh bandwidth, against
    the torus cable's 14/45). The interposer is a small package, so the
    grid is capped at :data:`MAX_INTERPOSER_RADIX` per side.
    """

    name = "chiplet"
    num_axes = 2
    #: Interposer reach: at most a 4 x 4 chiplet grid fits the package.
    MAX_INTERPOSER_RADIX: ClassVar[int] = 4
    max_radix = MAX_INTERPOSER_RADIX
    #: Interposer trace latency, in cycles (short wires, no SerDes).
    INTERPOSER_LATENCY: ClassVar[int] = 4
    #: Interposer serialization: 3/2 cycles per flit (2/3 of mesh width).
    INTERPOSER_CYCLES_PER_FLIT: ClassVar[Fraction] = Fraction(3, 2)

    def wraps(self, dim: int) -> bool:
        return False

    def internode_latency(self, config) -> int:
        return self.INTERPOSER_LATENCY

    def internode_cycles_per_flit(self, config) -> Fraction:
        return self.INTERPOSER_CYCLES_PER_FLIT


#: Registered topologies, by CLI/config name.
TOPOLOGIES: Dict[str, Type[Topology]] = {
    cls.name: cls for cls in (TorusTopology, Mesh2DTopology, ChipletTopology)
}

TOPOLOGY_NAMES: Tuple[str, ...] = tuple(TOPOLOGIES)


def make_topology(name: str, shape: Sequence[int]) -> Topology:
    """Build a registered topology by name, normalizing ``shape``."""
    try:
        cls = TOPOLOGIES[name]
    except KeyError:
        raise ValueError(
            f"unknown topology {name!r}; registered: {', '.join(TOPOLOGIES)}"
        )
    return cls(shape)
