"""Full route construction: inter-node + on-chip + VC assignment.

Unicast routing in the Anton 2 network is *oblivious* (Section 2.3): a
packet follows a minimal dimension-order route through the inter-node
network, where the dimension order is any of the six permutations of
X, Y, Z and the packet is pinned to one of the two channel slices;
typically both choices are randomized per packet. Within each chip the
packet follows the direction-order on-chip algorithm
(:mod:`repro.core.onchip`); between chips it hops inter-node channels
through the channel adapters, using the skip channels for X through
traffic. Which displacements are minimal, and where datelines sit, is
the machine's :class:`~repro.core.topology.Topology`'s call -- the
route builder itself is topology-agnostic.

This module turns a (source endpoint, destination endpoint, route choice)
triple into the exact sequence of ``(channel, VC)`` hops the hardware
would use, including the VC promotion decisions of Section 2.5. The
resulting :class:`Route` objects are immutable and cached, and are what
both the cycle-level simulator and the analytic load computation consume.
"""

from __future__ import annotations

import dataclasses
import itertools
import random
from typing import Dict, List, Optional, Sequence, Tuple

from . import params
from .geometry import Coord3, Dim, TorusDirection
from .machine import Channel, ChannelGroup, ComponentKind, Machine
from .onchip import ANTON_DIRECTION_ORDER, mesh_route_coords, validate_direction_order
from .vc import make_allocator

#: All six dimension orders of Section 2.3 (XYZ, XZY, YXZ, YZX, ZXY, ZYX).
ALL_DIM_ORDERS: Tuple[Tuple[Dim, Dim, Dim], ...] = tuple(
    itertools.permutations((Dim.X, Dim.Y, Dim.Z))
)


@dataclasses.dataclass(frozen=True)
class RouteChoice:
    """The randomized per-packet routing decisions.

    ``deltas`` optionally pins the signed displacement traveled in each
    dimension; when omitted, the minimal displacement is used with ties
    (even radix, half-way destinations) broken toward ``+``.
    """

    dim_order: Tuple[Dim, Dim, Dim] = (Dim.X, Dim.Y, Dim.Z)
    slice_index: int = 0
    deltas: Optional[Coord3] = None

    def __post_init__(self) -> None:
        if tuple(sorted(self.dim_order)) != (Dim.X, Dim.Y, Dim.Z):
            raise ValueError(f"dim_order must be a permutation of X, Y, Z: {self.dim_order}")
        if self.slice_index not in range(params.NUM_SLICES):
            raise ValueError(f"slice_index must be 0 or 1, got {self.slice_index}")


@dataclasses.dataclass(frozen=True)
class Route:
    """A complete route: the exact (channel id, VC index) hop sequence.

    ``via`` is the intermediate chip of a two-phase detour route (fault
    avoidance), or ``None`` for ordinary single-phase routes.
    """

    src: int
    dst: int
    choice: RouteChoice
    hops: Tuple[Tuple[int, int], ...]
    internode_hops: int
    via: Optional[Coord3] = None

    def channels(self) -> Tuple[int, ...]:
        """The channel ids along the route, in order."""
        return tuple(channel for channel, _vc in self.hops)


class Unroutable(RuntimeError):
    """No legal route exists between two components on this (degraded) machine.

    Raised by fault-aware routing when every dimension order, slice,
    non-minimal displacement, and two-phase detour is blocked by failed
    channels.
    """

    def __init__(self, src: int, dst: int, detail: str = "") -> None:
        message = f"no route from component {src} to component {dst}"
        if detail:
            message += f": {detail}"
        super().__init__(message)
        self.src = src
        self.dst = dst


class RouteComputer:
    """Builds and caches routes over one machine."""

    def __init__(
        self,
        machine: Machine,
        direction_order: Sequence = ANTON_DIRECTION_ORDER,
        allow_nonminimal: bool = False,
    ) -> None:
        self.machine = machine
        self.direction_order = validate_direction_order(direction_order)
        #: Accept monotone non-minimal displacements (``|delta| <= radix-1``,
        #: the other way around a ring). Off by default: healthy-machine
        #: routing is strictly minimal; fault-aware routing enables it.
        self.allow_nonminimal = allow_nonminimal
        self._cache: Dict[Tuple[int, int, RouteChoice, int], Route] = {}
        self._plan_cache: Dict[Tuple, Route] = {}
        #: Interned :class:`RouteChoice` flyweights keyed by their field
        #: tuple. Sampling draws the same few hundred distinct choices
        #: over and over (6 orders x 2 slices x tie-breaks), so reusing
        #: one frozen instance per distinct choice keeps the route cache
        #: key-space small and skips dataclass construction + validation
        #: on every draw. Shared by everything holding this computer --
        #: the traffic samplers and the fault-aware subclass alike.
        self._choice_cache: Dict[Tuple, RouteChoice] = {}

    # --- route-choice helpers ------------------------------------------------

    def intern_choice(
        self,
        dim_order: Tuple[Dim, Dim, Dim],
        slice_index: int,
        deltas: Optional[Coord3],
    ) -> RouteChoice:
        """The canonical :class:`RouteChoice` for a field combination.

        Equal field tuples always return the *same* object (validated
        once, on first construction); equality and hashing semantics are
        unchanged, identity is a bonus for cache lookups.
        """
        key = (dim_order, slice_index, deltas)
        choice = self._choice_cache.get(key)
        if choice is None:
            choice = RouteChoice(
                dim_order=dim_order, slice_index=slice_index, deltas=deltas
            )
            self._choice_cache[key] = choice
        return choice

    def random_choice(
        self, rng: random.Random, src_chip: Coord3, dst_chip: Coord3
    ) -> RouteChoice:
        """Draw a uniformly randomized route choice (order, slice, ties).

        The RNG draw sequence (order, slice, then one tie-break per
        dimension) is part of the engine's bit-reproducibility contract;
        interning happens after the draws and never consumes randomness.
        """
        dim_order = ALL_DIM_ORDERS[rng.randrange(len(ALL_DIM_ORDERS))]
        slice_index = rng.randrange(params.NUM_SLICES)
        topology = self.machine.topology
        deltas = tuple(
            rng.choice(topology.minimal_deltas(src_chip[d], dst_chip[d], d))
            for d in range(3)
        )
        return self.intern_choice(dim_order, slice_index, deltas)

    def all_choices(self, src_chip: Coord3, dst_chip: Coord3):
        """Every (dim order, slice, tie-break) choice with its probability.

        Used by the analytic load computation: yields ``(choice, prob)``
        pairs whose probabilities sum to one and match the distribution of
        :meth:`random_choice`.
        """
        topology = self.machine.topology
        delta_options = [
            topology.minimal_deltas(src_chip[d], dst_chip[d], d) for d in range(3)
        ]
        num_delta_combos = 1
        for options in delta_options:
            num_delta_combos *= len(options)
        prob = 1.0 / (len(ALL_DIM_ORDERS) * params.NUM_SLICES * num_delta_combos)
        for dim_order in ALL_DIM_ORDERS:
            for slice_index in range(params.NUM_SLICES):
                for deltas in itertools.product(*delta_options):
                    yield (
                        self.intern_choice(dim_order, slice_index, tuple(deltas)),
                        prob,
                    )

    # --- route construction ----------------------------------------------------

    def compute(
        self,
        src_endpoint: int,
        dst_endpoint: int,
        choice: RouteChoice,
        traffic_class: int = 0,
    ) -> Route:
        """The route from one endpoint adapter to another.

        Routes are cached; callers must treat the result as immutable.
        """
        key = (src_endpoint, dst_endpoint, choice, traffic_class)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        route = self._build(src_endpoint, dst_endpoint, choice, traffic_class)
        self._cache[key] = route
        return route

    def _vc_index(self, channel: Channel, within_class_vc: int, traffic_class: int) -> int:
        cfg = self.machine.config
        if channel.group == ChannelGroup.M:
            per_class = cfg.vcs_per_class_m
        elif channel.group == ChannelGroup.T:
            per_class = cfg.vcs_per_class_t
        else:
            per_class = 1
            within_class_vc = 0
        if within_class_vc >= per_class:
            raise AssertionError(
                f"VC {within_class_vc} exceeds the {per_class} VCs of {channel}"
            )
        return traffic_class * per_class + within_class_vc

    def compute_plan(
        self,
        start: int,
        dst_endpoint: int,
        legs: Sequence[Tuple[Coord3, RouteChoice]],
        traffic_class: int = 0,
    ) -> Route:
        """A route from any component through a sequence of inter-node legs.

        ``start`` may be an endpoint adapter, a router, or a channel
        adapter (the latter two are used when re-routing an in-flight
        packet around a mid-run fault); ``legs`` is a sequence of
        ``(target chip, choice)`` pairs, each traveled with a fresh VC
        allocator so the Section 2.5 promotion invariants hold per leg.
        The final leg's target must be the destination endpoint's chip.
        Routes are cached; callers must treat the result as immutable.
        """
        legs = tuple(legs)
        key = (start, dst_endpoint, legs, traffic_class)
        cached = self._plan_cache.get(key)
        if cached is not None:
            return cached
        route = self._build_plan(start, dst_endpoint, legs, traffic_class)
        self._plan_cache[key] = route
        return route

    def _leg_deltas(
        self, cur_chip: Coord3, target_chip: Coord3, choice: RouteChoice
    ) -> Coord3:
        """Validate (or derive) the signed displacements for one leg."""
        topology = self.machine.topology
        deltas = choice.deltas
        if deltas is None:
            return tuple(
                topology.delta(cur_chip[d], target_chip[d], d) for d in range(3)
            )
        for d in range(3):
            legal = (
                topology.monotone_deltas(cur_chip[d], target_chip[d], d)
                if self.allow_nonminimal
                else topology.minimal_deltas(cur_chip[d], target_chip[d], d)
            )
            if deltas[d] not in legal:
                raise ValueError(
                    f"delta {deltas[d]} is not legal for dimension {Dim(d)}"
                )
        return deltas

    def _build(
        self,
        src_endpoint: int,
        dst_endpoint: int,
        choice: RouteChoice,
        traffic_class: int,
    ) -> Route:
        machine = self.machine
        src = machine.components[src_endpoint]
        dst = machine.components[dst_endpoint]
        if src.kind != ComponentKind.ENDPOINT or dst.kind != ComponentKind.ENDPOINT:
            raise ValueError("routes connect endpoint adapters")
        return self._build_plan(
            src_endpoint, dst_endpoint, ((dst.chip, choice),), traffic_class
        )

    def _build_plan(
        self,
        start: int,
        dst_endpoint: int,
        legs: Tuple[Tuple[Coord3, RouteChoice], ...],
        traffic_class: int,
    ) -> Route:
        machine = self.machine
        plan = machine.floorplan
        cfg = machine.config
        dst = machine.components[dst_endpoint]
        if dst.kind != ComponentKind.ENDPOINT:
            raise ValueError("routes end at endpoint adapters")
        if not legs:
            raise ValueError("route plan needs at least one leg")
        if legs[-1][0] != dst.chip:
            raise ValueError(
                f"final leg targets {legs[-1][0]}, destination is on {dst.chip}"
            )

        shape = cfg.shape
        hops: List[Tuple[int, int]] = []
        internode_hops = 0

        def emit(alloc, src_cid: int, dst_cid: int, vc_kind: str) -> None:
            channel = machine.channel(src_cid, dst_cid)
            if vc_kind == "m":
                vc = self._vc_index(channel, alloc.m_vc(), traffic_class)
            elif vc_kind == "t":
                vc = self._vc_index(channel, alloc.t_vc(), traffic_class)
            else:
                vc = self._vc_index(channel, 0, traffic_class)
            hops.append((channel.cid, vc))

        def emit_mesh_path(alloc, chip: Coord3, src_coord, dst_coord) -> None:
            cur = src_coord
            for nxt in mesh_route_coords(src_coord, dst_coord, self.direction_order):
                emit(
                    alloc,
                    machine.router_id[(chip, cur)],
                    machine.router_id[(chip, nxt)],
                    "m",
                )
                cur = nxt

        allocs = [make_allocator(cfg.vc_scheme) for _ in legs]

        # Starting position: endpoints and channel adapters first hop onto
        # their attached router; a router start begins on the mesh directly.
        origin = machine.components[start]
        cur_chip = origin.chip
        if origin.kind == ComponentKind.ENDPOINT:
            cur_router = plan.endpoint_router[origin.detail]
            emit(allocs[0], start, machine.router_id[(cur_chip, cur_router)], "e")
        elif origin.kind == ComponentKind.ROUTER:
            cur_router = origin.detail
        elif origin.kind == ComponentKind.CHANNEL_ADAPTER:
            direction, slice_index = origin.detail
            cur_router = plan.channel_adapter_router[(direction, slice_index)]
            emit(allocs[0], start, machine.router_id[(cur_chip, cur_router)], "t")
        else:  # pragma: no cover - defensive
            raise ValueError(f"cannot start a route at {origin}")

        for (target_chip, choice), alloc in zip(legs, allocs):
            deltas = self._leg_deltas(cur_chip, target_chip, choice)
            dims_to_travel = [d for d in choice.dim_order if deltas[d] != 0]
            for dim in dims_to_travel:
                delta = deltas[dim]
                direction = TorusDirection(Dim(dim), 1 if delta > 0 else -1)
                slice_index = choice.slice_index
                radix = shape[dim]
                departure_coord = plan.channel_adapter_router[(direction, slice_index)]
                arrival_coord = plan.channel_adapter_router[
                    (direction.opposite, slice_index)
                ]

                # On-chip route to the departure channel adapter's router,
                # then into the T-group via the router -> adapter link.
                emit_mesh_path(alloc, cur_chip, cur_router, departure_coord)
                cur_router = departure_coord
                alloc.start_dimension()
                departure_ca = machine.ca_id[(cur_chip, direction, slice_index)]
                emit(alloc, machine.router_id[(cur_chip, cur_router)], departure_ca, "t")

                coord = cur_chip[dim]
                steps = abs(delta)
                for step in range(steps):
                    next_coord = (coord + direction.sign) % radix
                    if machine.topology.crossing_step(dim, coord, next_coord):
                        # The dateline channel itself is used at the promoted VC.
                        alloc.cross_dateline()
                    next_chip = machine.neighbor(cur_chip, direction)
                    arrival_ca = machine.ca_id[
                        (next_chip, direction.opposite, slice_index)
                    ]
                    emit(
                        alloc,
                        machine.ca_id[(cur_chip, direction, slice_index)],
                        arrival_ca,
                        "t",
                    )
                    internode_hops += 1
                    cur_chip = next_chip
                    coord = next_coord
                    if step < steps - 1:
                        # Through route at an intermediate chip: adapter ->
                        # router, (skip channel for X), router -> adapter. All
                        # these links are T-group.
                        arrival_router = machine.router_id[(cur_chip, arrival_coord)]
                        emit(alloc, arrival_ca, arrival_router, "t")
                        if arrival_coord != departure_coord:
                            if not plan.skip_for(arrival_coord, departure_coord):
                                raise AssertionError(
                                    f"no skip channel between {arrival_coord} and "
                                    f"{departure_coord} for {direction} through traffic"
                                )
                            departure_router = machine.router_id[
                                (cur_chip, departure_coord)
                            ]
                            emit(alloc, arrival_router, departure_router, "t")
                            arrival_router = departure_router
                        emit(
                            alloc,
                            arrival_router,
                            machine.ca_id[(cur_chip, direction, slice_index)],
                            "t",
                        )
                # Last chip of this dimension: leave the T-group. The final
                # adapter -> router link still belongs to this dimension's
                # T-group visit (old VC); the promotion applies afterwards.
                final_ca = machine.ca_id[(cur_chip, direction.opposite, slice_index)]
                emit(alloc, final_ca, machine.router_id[(cur_chip, arrival_coord)], "t")
                alloc.finish_dimension()
                cur_router = arrival_coord
            if cur_chip != target_chip:  # pragma: no cover - defensive
                raise AssertionError(
                    f"leg ended at {cur_chip}, expected {target_chip}"
                )

        # Destination chip: on-chip route to the destination endpoint, still
        # under the last leg's allocator.
        dst_router = plan.endpoint_router[dst.detail]
        emit_mesh_path(allocs[-1], cur_chip, cur_router, dst_router)
        emit(allocs[-1], machine.router_id[(cur_chip, dst_router)], dst_endpoint, "e")

        return Route(
            src=start,
            dst=dst_endpoint,
            choice=legs[0][1],
            hops=tuple(hops),
            internode_hops=internode_hops,
            via=legs[0][0] if len(legs) > 1 else None,
        )


def validate_route(machine: Machine, route: Route) -> None:
    """Check route well-formedness: connectivity and VC legality.

    Raises ``AssertionError`` on any violation. Used by tests and by the
    deadlock checker's route enumeration.
    """
    if not route.hops:
        raise AssertionError("route has no hops")
    first = machine.channels[route.hops[0][0]]
    if first.src != route.src:
        raise AssertionError("route does not start at its source endpoint")
    last = machine.channels[route.hops[-1][0]]
    if last.dst != route.dst:
        raise AssertionError("route does not end at its destination endpoint")
    prev_dst = None
    for channel_id, vc in route.hops:
        channel = machine.channels[channel_id]
        if prev_dst is not None and channel.src != prev_dst:
            raise AssertionError(
                f"hop {channel} does not start where the previous hop ended"
            )
        if not 0 <= vc < machine.vcs_for_channel(channel):
            raise AssertionError(f"VC {vc} illegal on {channel}")
        prev_dst = channel.dst
