"""Virtual-channel allocation schemes for deadlock avoidance (Section 2.5).

Two schemes are implemented as small per-packet state machines consulted
by the route builder:

* :class:`AntonVcAllocator` -- the paper's promotion algorithm. A packet's
  VC starts at 0 and is incremented only when it (1) crosses a dateline,
  or (2) finishes routing along a torus dimension in which it did not
  cross a dateline. The VC is therefore incremented at most once per
  dimension, so an ``n``-dimensional torus needs only ``n + 1`` VCs per
  traffic class on both the T-group and M-group channels.

* :class:`BaselineVcAllocator` -- the prior approach [Nesson & Johnsson
  1995 and successors]: a distinct VC pair (with dateline) per traversal
  position, i.e. T-group VC ``2p + crossed`` while traveling the packet's
  ``p``-th dimension, and M-group VC equal to the number of completed
  dimensions. This needs ``2n`` T-group VCs per class.

Both schemes assume minimal (shortest-path) torus routing and a common
dateline between coordinates ``k - 1`` and ``0`` in each dimension; the
deadlock-freedom of both is verified constructively by
:mod:`repro.core.deadlock`.
"""

from __future__ import annotations

import abc


class VcAllocator(abc.ABC):
    """Per-packet VC assignment state machine.

    The route builder drives the allocator through the packet's lifetime:
    ``start_dimension`` when torus travel in a new dimension begins,
    ``cross_dateline`` immediately *before* emitting the torus hop that
    crosses the dateline (the crossing channel is used at the incremented
    VC, per the standard dateline construction), and ``finish_dimension``
    after the last torus hop of the dimension.
    """

    #: Number of VCs the scheme requires on T-group channels per class.
    T_VCS: int
    #: Number of VCs the scheme requires on M-group channels per class.
    M_VCS: int

    @abc.abstractmethod
    def t_vc(self) -> int:
        """VC for the next T-group channel hop."""

    @abc.abstractmethod
    def m_vc(self) -> int:
        """VC for the next M-group channel hop."""

    @abc.abstractmethod
    def start_dimension(self) -> None: ...

    @abc.abstractmethod
    def cross_dateline(self) -> None: ...

    @abc.abstractmethod
    def finish_dimension(self) -> None: ...


class AntonVcAllocator(VcAllocator):
    """The Anton 2 VC promotion scheme: n + 1 VCs for an n-D torus."""

    T_VCS = 4
    M_VCS = 4

    def __init__(self, num_dims: int = 3) -> None:
        self.num_dims = num_dims
        self._vc = 0
        self._crossed_in_dim = False
        self._dims_done = 0

    def t_vc(self) -> int:
        return self._vc

    def m_vc(self) -> int:
        return self._vc

    def start_dimension(self) -> None:
        self._crossed_in_dim = False

    def cross_dateline(self) -> None:
        if self._crossed_in_dim:
            raise AssertionError(
                "minimal route crossed the same dimension's dateline twice"
            )
        self._crossed_in_dim = True
        self._vc += 1

    def finish_dimension(self) -> None:
        # Promotion rule 2: finishing a dimension without a dateline
        # crossing also bumps the VC, so the VC advances exactly once per
        # dimension.
        if not self._crossed_in_dim:
            self._vc += 1
        self._crossed_in_dim = False
        self._dims_done += 1
        if self._vc > self.num_dims:
            raise AssertionError(
                f"VC {self._vc} exceeded {self.num_dims} after "
                f"{self._dims_done} dimensions"
            )


class BaselineVcAllocator(VcAllocator):
    """The prior 2n-VC scheme: one dateline VC pair per traversal position."""

    T_VCS = 6
    M_VCS = 4

    def __init__(self, num_dims: int = 3) -> None:
        self.num_dims = num_dims
        self._position = 0
        self._crossed = 0

    def t_vc(self) -> int:
        return 2 * self._position + self._crossed

    def m_vc(self) -> int:
        return self._position

    def start_dimension(self) -> None:
        self._crossed = 0

    def cross_dateline(self) -> None:
        if self._crossed:
            raise AssertionError(
                "minimal route crossed the same dimension's dateline twice"
            )
        self._crossed = 1

    def finish_dimension(self) -> None:
        self._position += 1
        self._crossed = 0
        if self._position > self.num_dims:
            raise AssertionError("more dimensions finished than exist")


class UnsafeSingleVcAllocator(VcAllocator):
    """A deliberately broken scheme: one VC, no datelines.

    Ring traffic on a torus can deadlock with a single VC [Dally & Seitz
    1987]. This allocator exists as a negative control: the dependency
    graph built from it contains cycles, and the simulator's watchdog
    catches real deadlocks when it is used under ring-saturating traffic.
    """

    T_VCS = 1
    M_VCS = 1

    def __init__(self, num_dims: int = 3) -> None:
        self.num_dims = num_dims

    def t_vc(self) -> int:
        return 0

    def m_vc(self) -> int:
        return 0

    def start_dimension(self) -> None:
        pass

    def cross_dateline(self) -> None:
        pass

    def finish_dimension(self) -> None:
        pass


def make_allocator(scheme: str, num_dims: int = 3) -> VcAllocator:
    """Build a VC allocator by scheme name.

    Schemes: ``"anton"`` (promotion, n + 1 VCs), ``"baseline"`` (2n VCs),
    or ``"unsafe-single"`` (one VC, deadlock-prone; negative control).
    """
    if scheme == "anton":
        return AntonVcAllocator(num_dims)
    if scheme == "baseline":
        return BaselineVcAllocator(num_dims)
    if scheme == "unsafe-single":
        return UnsafeSingleVcAllocator(num_dims)
    raise ValueError(f"unknown VC scheme {scheme!r}")


def vcs_required(scheme: str, num_dims: int) -> dict:
    """VCs per traffic class required by a scheme on an n-D torus.

    Reproduces the paper's headline claim: the Anton scheme needs
    ``n + 1`` VCs on both groups while the baseline needs ``2n`` on the
    T-group, a one-third reduction for n = 3.
    """
    if scheme == "anton":
        return {"t": num_dims + 1, "m": num_dims + 1}
    if scheme == "baseline":
        return {"t": 2 * num_dims, "m": num_dims + 1}
    raise ValueError(f"unknown VC scheme {scheme!r}")
