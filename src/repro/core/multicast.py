"""Table-based inter-node multicast (Section 2.3, Figure 3).

The Anton 2 network supports multicast to arbitrary destination sets via
tables loaded at initialization. Multicast trees are constrained so that
every source-to-destination path through the tree is a valid (minimal,
dimension-order) unicast route -- which is also why multicast adds no new
VC dependencies (Section 2.5).

This module builds dimension-order multicast trees, verifies the
valid-unicast-path constraint against the machine's route computer,
accounts for the inter-node bandwidth saved versus per-destination
unicasts, and reproduces the Figure 3 observation that alternating
between two trees with different dimension orders balances the load on
the torus channels.

Multicast is modeled analytically (trees and channel loads) rather than
in the cycle-level simulator; the simulator's unicast routes are the
paths the tree replicates over, so the flow-control behaviour is already
exercised.
"""

from __future__ import annotations

import dataclasses
from collections import defaultdict
from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

from .geometry import Coord3, Dim, TorusDirection, minimal_deltas, torus_delta

#: A directed inter-node tree edge: (from_chip, to_chip).
TreeEdge = Tuple[Coord3, Coord3]


@dataclasses.dataclass(frozen=True)
class MulticastTree:
    """One multicast route: a tree of inter-node hops."""

    source: Coord3
    destinations: FrozenSet[Coord3]
    dim_order: Tuple[Dim, ...]
    edges: FrozenSet[TreeEdge]

    @property
    def torus_hops(self) -> int:
        """Inter-node bandwidth consumed by one multicast packet."""
        return len(self.edges)

    def path_to(self, destination: Coord3, shape: Coord3) -> List[Coord3]:
        """The chips visited from source to one destination (inclusive).

        Follows the tree's dimension order; used to verify that each
        root-to-leaf path is a valid unicast route.
        """
        if destination not in self.destinations and destination != self.source:
            raise ValueError(f"{destination} is not a destination of this tree")
        path = [self.source]
        cur = list(self.source)
        for dim in self.dim_order:
            delta = torus_delta(cur[dim], destination[dim], shape[dim])
            step = 1 if delta > 0 else -1
            for _ in range(abs(delta)):
                cur[dim] = (cur[dim] + step) % shape[dim]
                path.append(tuple(cur))
        return path


def build_tree(
    shape: Coord3,
    source: Coord3,
    destinations: Iterable[Coord3],
    dim_order: Sequence[Dim] = (Dim.X, Dim.Y, Dim.Z),
) -> MulticastTree:
    """Build the dimension-order multicast tree for a destination set.

    The tree is the union of the dimension-order unicast routes to every
    destination: shared route prefixes become shared tree edges, which is
    where the bandwidth saving comes from.
    """
    destinations = frozenset(destinations)
    if not destinations:
        raise ValueError("destination set is empty")
    dim_order = tuple(dim_order)
    if tuple(sorted(dim_order)) != (Dim.X, Dim.Y, Dim.Z):
        raise ValueError(f"dim_order must be a permutation of X, Y, Z: {dim_order}")
    edges: Set[TreeEdge] = set()
    for destination in destinations:
        cur = list(source)
        for dim in dim_order:
            delta = torus_delta(cur[dim], destination[dim], shape[dim])
            step = 1 if delta > 0 else -1
            for _ in range(abs(delta)):
                nxt = list(cur)
                nxt[dim] = (cur[dim] + step) % shape[dim]
                edges.add((tuple(cur), tuple(nxt)))
                cur = nxt
    return MulticastTree(
        source=source,
        destinations=destinations,
        dim_order=dim_order,
        edges=frozenset(edges),
    )


def unicast_hops(shape: Coord3, source: Coord3, destinations: Iterable[Coord3]) -> int:
    """Total inter-node hops if each destination got its own unicast."""
    total = 0
    for destination in destinations:
        total += sum(
            abs(torus_delta(s, d, k))
            for s, d, k in zip(source, destination, shape)
        )
    return total


def multicast_savings(tree: MulticastTree, shape: Coord3) -> int:
    """Torus hops saved by the tree versus per-destination unicasts.

    The Figure 3 example saves 12 hops for one particle broadcast into a
    plane of the torus.
    """
    return unicast_hops(shape, tree.source, tree.destinations) - tree.torus_hops


def endpoint_fanout_savings(
    tree: MulticastTree, shape: Coord3, endpoints_per_node: int
) -> int:
    """Savings when each node receives ``endpoints_per_node`` copies.

    Separate copies are written to each endpoint, so unicast cost scales
    with the endpoint count while the multicast tree pays each inter-node
    hop once -- "the inter-node bandwidth savings offered by multicast
    quickly multiply" (Section 2.3).
    """
    if endpoints_per_node < 1:
        raise ValueError("endpoints_per_node must be at least 1")
    unicast = endpoints_per_node * unicast_hops(shape, tree.source, tree.destinations)
    return unicast - tree.torus_hops


def edge_direction(edge: TreeEdge, shape: Coord3) -> TorusDirection:
    """The torus direction of one tree edge."""
    src, dst = edge
    for dim in (Dim.X, Dim.Y, Dim.Z):
        if src[dim] != dst[dim]:
            delta = (dst[dim] - src[dim]) % shape[dim]
            sign = 1 if delta == 1 else -1
            return TorusDirection(dim, sign)
    raise ValueError(f"edge {edge} does not move")


def channel_loads(
    trees: Sequence[MulticastTree],
    weights: Sequence[float],
    shape: Coord3,
) -> Dict[TreeEdge, float]:
    """Per-torus-link load when multicasts alternate between trees.

    ``weights[i]`` is the fraction of packets sent over ``trees[i]``.
    Alternating between the two Figure 3 routes evens out the per-link
    load relative to using either tree alone.
    """
    if len(trees) != len(weights):
        raise ValueError("trees and weights must align")
    if abs(sum(weights) - 1.0) > 1e-9:
        raise ValueError("weights must sum to 1")
    loads: Dict[TreeEdge, float] = defaultdict(float)
    for tree, weight in zip(trees, weights):
        for edge in tree.edges:
            loads[edge] += weight
    return dict(loads)


def max_channel_load(loads: Dict[TreeEdge, float]) -> float:
    return max(loads.values(), default=0.0)


def directional_loads(
    trees: Sequence[MulticastTree],
    weights: Sequence[float],
    shape: Coord3,
) -> Dict[TorusDirection, float]:
    """Aggregate per-direction torus load when every node sources trees.

    In an MD simulation every node multicasts its particles with the same
    tree shape (the pattern is node-symmetric), so the steady-state load
    on a torus channel in direction ``d`` equals the number of
    ``d``-edges in the tree, averaged over the alternating trees. This is
    the quantity the Figure 3 alternation balances: an XY-ordered tree
    concentrates edges in Y, a YX-ordered tree in X, and the 50/50 blend
    lowers the maximum.
    """
    if len(trees) != len(weights):
        raise ValueError("trees and weights must align")
    if abs(sum(weights) - 1.0) > 1e-9:
        raise ValueError("weights must sum to 1")
    loads: Dict[TorusDirection, float] = defaultdict(float)
    for tree, weight in zip(trees, weights):
        for edge in tree.edges:
            loads[edge_direction(edge, shape)] += weight
    return dict(loads)


def max_directional_load(loads: Dict[TorusDirection, float]) -> float:
    return max(loads.values(), default=0.0)


def verify_unicast_paths(tree: MulticastTree, shape: Coord3) -> None:
    """Check that every root-to-leaf path is a valid minimal unicast route.

    Raises ``AssertionError`` if any path hop is not a tree edge or any
    path is non-minimal. This is the constraint that keeps multicast from
    adding VC dependencies.
    """
    for destination in tree.destinations:
        path = tree.path_to(destination, shape)
        expected = sum(
            abs(torus_delta(s, d, k))
            for s, d, k in zip(tree.source, destination, shape)
        )
        if len(path) - 1 != expected:
            raise AssertionError(
                f"path to {destination} has {len(path) - 1} hops, minimal is "
                f"{expected}"
            )
        for src, dst in zip(path, path[1:]):
            if (src, dst) not in tree.edges:
                raise AssertionError(
                    f"path hop {src}->{dst} is not an edge of the tree"
                )


def figure3_example(shape: Coord3 = (8, 8, 1)):
    """A representative Figure 3 scenario: a particle broadcast into a
    plane of the torus, with two alternating dimension-order routes.

    Returns ``(tree_xy, tree_yx, destinations)``. The destination set is
    the 3 x 5 in-plane neighborhood a particle's position is sent to in a
    typical MD import region; the exact set of Figure 3 is not published,
    so the numbers differ slightly (we save 14 hops, the paper's example
    saves 12) while the structure -- large savings, better balance by
    alternating -- is the same.
    """
    source = (3, 3, 0)
    destinations = [
        ((source[0] + dx) % shape[0], (source[1] + dy) % shape[1], 0)
        for dx in (-1, 0, 1)
        for dy in (-2, -1, 0, 1, 2)
        if not (dx == 0 and dy == 0)
    ]
    tree_xy = build_tree(shape, source, destinations, (Dim.X, Dim.Y, Dim.Z))
    tree_yx = build_tree(shape, source, destinations, (Dim.Y, Dim.X, Dim.Z))
    return tree_xy, tree_yx, destinations
