"""The Anton 2 ASIC floorplan: 4 x 4 mesh, skip channels, adapters.

This module reconstructs the on-chip topology of Figure 1 from the paper's
textual constraints (see DESIGN.md Section 3):

* the mesh is ``MESH_RADIX x MESH_RADIX`` (4 x 4), routers addressed by
  mesh coordinates ``(u, v)``;
* high-speed I/O sits on the two opposite edges ``u = 0`` and ``u = 3``;
* both directions of a Y or Z torus channel pair attach to a *single*
  router so through traffic crosses one router; same-slice Y and Z share
  an edge (the text pins ``Y0+/Y0-`` to router ``(0, 2)``);
* the X+ and X- channels are split across the two edges (the text pins
  ``X1-`` to ``(3, 0)`` and ``X1+`` to ``(0, 0)``), and a *skip channel*
  connects each X pair directly so X through traffic skips the two
  intermediate routers.

Everything here is pure layout data; :mod:`repro.core.machine` instantiates
components and channels from it.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Sequence, Tuple

from . import params
from .geometry import (
    Coord2,
    Dim,
    TORUS_DIRECTIONS,
    TorusDirection,
)


@dataclasses.dataclass(frozen=True)
class SkipChannel:
    """A bidirectional skip channel between two routers on one mesh row.

    ``slice_index`` records which torus slice's X traffic uses it; the
    deadlock analysis places skip channels in the T-group.
    """

    ends: Tuple[Coord2, Coord2]
    slice_index: int


@dataclasses.dataclass(frozen=True)
class ChipFloorplan:
    """Placement of channel adapters, skip channels, and endpoint adapters.

    Attributes
    ----------
    mesh_radix:
        Routers per mesh dimension (4 for Anton 2).
    channel_adapter_router:
        Maps ``(direction, slice)`` to the mesh coordinates of the router
        the corresponding torus-channel adapter attaches to.
    skip_channels:
        The skip channels (two for Anton 2, one per slice).
    endpoint_router:
        ``endpoint_router[e]`` is the router that endpoint adapter ``e``
        attaches to.
    """

    mesh_radix: int
    channel_adapter_router: Dict[Tuple[TorusDirection, int], Coord2]
    skip_channels: Tuple[SkipChannel, ...]
    endpoint_router: Tuple[Coord2, ...]

    #: Ports per router (six in Anton 2).
    ROUTER_PORTS = 6

    @property
    def num_endpoints(self) -> int:
        return len(self.endpoint_router)

    @property
    def num_channel_adapters(self) -> int:
        return len(self.channel_adapter_router)

    def router_coords(self) -> List[Coord2]:
        """All router coordinates in row-major (u, then v) order."""
        return [
            (u, v)
            for u in range(self.mesh_radix)
            for v in range(self.mesh_radix)
        ]

    def mesh_links(self) -> List[Tuple[Coord2, Coord2]]:
        """All bidirectional mesh links as coordinate pairs (u, v) sorted."""
        links = []
        r = self.mesh_radix
        for u in range(r):
            for v in range(r):
                if u + 1 < r:
                    links.append(((u, v), (u + 1, v)))
                if v + 1 < r:
                    links.append(((u, v), (u, v + 1)))
        return links

    def skip_for(self, src_router: Coord2, dst_router: Coord2) -> bool:
        """Whether a skip channel directly connects these two routers."""
        for skip in self.skip_channels:
            if set(skip.ends) == {src_router, dst_router}:
                return True
        return False

    def ports_used(self) -> Dict[Coord2, int]:
        """Ports consumed at each router (mesh + skip + adapters)."""
        used = {coord: 0 for coord in self.router_coords()}
        for a, b in self.mesh_links():
            used[a] += 1
            used[b] += 1
        for skip in self.skip_channels:
            for end in skip.ends:
                used[end] += 1
        for coord in self.channel_adapter_router.values():
            used[coord] += 1
        for coord in self.endpoint_router:
            used[coord] += 1
        return used

    def validate(self) -> None:
        """Check structural invariants (port budget, placement legality)."""
        r = self.mesh_radix
        for (direction, slice_index), coord in self.channel_adapter_router.items():
            if slice_index not in range(params.NUM_SLICES):
                raise ValueError(f"bad slice {slice_index} for {direction}")
            if not (0 <= coord[0] < r and 0 <= coord[1] < r):
                raise ValueError(f"adapter {direction} slice {slice_index} at {coord} off mesh")
        for skip in self.skip_channels:
            (u1, v1), (u2, v2) = skip.ends
            if v1 != v2:
                raise ValueError(f"skip channel {skip} must run along one mesh row")
        for coord, used in self.ports_used().items():
            if used > self.ROUTER_PORTS:
                raise ValueError(
                    f"router {coord} uses {used} ports, more than {self.ROUTER_PORTS}"
                )


def _default_adapter_placement() -> Dict[Tuple[TorusDirection, int], Coord2]:
    """The Figure 1 channel-adapter placement (see DESIGN.md Section 3)."""
    placement: Dict[Tuple[TorusDirection, int], Coord2] = {}
    for direction in TORUS_DIRECTIONS:
        for slice_index in range(params.NUM_SLICES):
            if direction.dim == Dim.X:
                # X+ on the u=0 edge, X- on the u=3 edge; slice 1 on row
                # v=0 (pinned by the paper's example), slice 0 on row v=3.
                u = 0 if direction.sign > 0 else 3
                v = 0 if slice_index == 1 else 3
                placement[(direction, slice_index)] = (u, v)
            else:
                # Y and Z pairs on a single router; slice 0 on the u=0
                # edge, slice 1 on the u=3 edge. Y at v=2 (pinned by the
                # paper's example), Z at v=1.
                u = 0 if slice_index == 0 else 3
                v = 2 if direction.dim == Dim.Y else 1
                placement[(direction, slice_index)] = (u, v)
    return placement


def _default_skip_channels() -> Tuple[SkipChannel, ...]:
    """Skip channels between the X adapters of each slice."""
    return (
        SkipChannel(ends=((3, 0), (0, 0)), slice_index=1),
        SkipChannel(ends=((0, 3), (3, 3)), slice_index=0),
    )


def _default_endpoint_placement(
    num_endpoints: int,
    adapter_placement: Dict[Tuple[TorusDirection, int], Coord2],
    skip_channels: Sequence[SkipChannel],
    mesh_radix: int,
) -> Tuple[Coord2, ...]:
    """Distribute endpoint adapters round-robin over routers with free ports.

    The real chip attaches 23 endpoint adapters; the exact assignment is
    not published, so we spread endpoints as evenly as possible (at most
    one per router per round) which both respects the port budget and
    matches the paper's measurement setup of one active core per router.
    """
    free = {
        (u, v): ChipFloorplan.ROUTER_PORTS
        for u in range(mesh_radix)
        for v in range(mesh_radix)
    }
    plan = ChipFloorplan(
        mesh_radix=mesh_radix,
        channel_adapter_router=adapter_placement,
        skip_channels=tuple(skip_channels),
        endpoint_router=(),
    )
    for a, b in plan.mesh_links():
        free[a] -= 1
        free[b] -= 1
    for skip in skip_channels:
        for end in skip.ends:
            free[end] -= 1
    for coord in adapter_placement.values():
        free[coord] -= 1

    order = [
        (u, v) for v in range(mesh_radix) for u in range(mesh_radix)
    ]
    placement: List[Coord2] = []
    while len(placement) < num_endpoints:
        progress = False
        for coord in order:
            if len(placement) >= num_endpoints:
                break
            if free[coord] > 0:
                placement.append(coord)
                free[coord] -= 1
                progress = True
        if not progress:
            raise ValueError(
                f"cannot place {num_endpoints} endpoints: only "
                f"{len(placement)} ports available"
            )
    return tuple(placement)


def default_floorplan(
    num_endpoints: int = params.ENDPOINTS_PER_ASIC,
    mesh_radix: int = params.MESH_RADIX,
) -> ChipFloorplan:
    """Build the default Anton 2 floorplan.

    ``num_endpoints`` may be reduced for small simulations; the default is
    the real chip's 23. ``mesh_radix`` other than 4 is supported for unit
    tests of mesh routing but does not reposition the adapters, so only
    radix 4 is a faithful Anton 2 chip.
    """
    if mesh_radix != params.MESH_RADIX:
        raise ValueError(
            "only the 4 x 4 Anton 2 mesh has a defined floorplan; "
            f"got mesh_radix={mesh_radix}"
        )
    adapters = _default_adapter_placement()
    skips = _default_skip_channels()
    endpoints = _default_endpoint_placement(
        num_endpoints, adapters, skips, mesh_radix
    )
    plan = ChipFloorplan(
        mesh_radix=mesh_radix,
        channel_adapter_router=adapters,
        skip_channels=skips,
        endpoint_router=endpoints,
    )
    plan.validate()
    return plan
