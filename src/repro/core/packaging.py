"""Physical packaging of an Anton 2 machine (Section 2.2, Figure 2).

Each ASIC sits on a *nodecard*; sixteen nodecards plug into a backplane
in a 4 x 4 x 1 arrangement, with the torus channels between them routed
entirely in the backplane. All other torus channels leave the backplane
on cables, which is what lets a single backplane design serve every
machine size from 16 to 4,096 ASICs. Eight backplanes mount in a rack;
a 512-node machine fills four racks.

The model classifies every torus link as backplane trace, intra-rack
cable, or inter-rack cable, and assigns representative lengths (Figure 2
annotates nodecard traces of 7.1-11.7 cm and keys trace/cable lengths by
connection type), from which per-link flight times can be derived.
"""

from __future__ import annotations

import dataclasses
from collections import Counter
from typing import Dict, Iterator, Tuple

from .geometry import Coord3, TORUS_DIRECTIONS, TorusDirection, all_coords, validate_shape

#: Nodecards per backplane along each torus dimension.
BACKPLANE_SHAPE = (4, 4, 1)

#: Backplanes mounted in one rack.
BACKPLANES_PER_RACK = 8

#: Nodecard trace length range, in cm (ASIC to edge connector).
NODECARD_TRACE_CM = (7.1, 11.7)

#: Representative connection lengths, in cm, by classification.
CONNECTION_LENGTH_CM = {
    "backplane": 25.0,
    "intra-rack cable": 75.0,
    "inter-rack cable": 180.0,
}

#: Signal propagation in PCB trace / cable, cm per ns.
PROPAGATION_CM_PER_NS = 15.0


@dataclasses.dataclass(frozen=True)
class Packaging:
    """Packaging map for a machine of a given torus shape."""

    shape: Coord3

    def __post_init__(self) -> None:
        validate_shape(self.shape)

    def backplane_of(self, chip: Coord3) -> Coord3:
        """The backplane holding a chip, labeled Figure 2 style by the
        lexicographically smallest coordinates of its chips."""
        return tuple(
            (c // b) * b for c, b in zip(chip, BACKPLANE_SHAPE)
        )

    def rack_of(self, chip: Coord3) -> Tuple[int, int]:
        """The rack holding a chip.

        Racks group the eight backplanes that share an (x, y) footprint
        (the z column), matching the 512-node machine's 4 racks of 8
        backplanes.
        """
        backplane = self.backplane_of(chip)
        return (backplane[0] // BACKPLANE_SHAPE[0], backplane[1] // BACKPLANE_SHAPE[1])

    @property
    def num_chips(self) -> int:
        kx, ky, kz = self.shape
        return kx * ky * kz

    @property
    def num_backplanes(self) -> int:
        return len({self.backplane_of(chip) for chip in all_coords(self.shape)})

    @property
    def num_racks(self) -> int:
        return len({self.rack_of(chip) for chip in all_coords(self.shape)})

    def classify_link(self, chip_a: Coord3, chip_b: Coord3) -> str:
        """Classification of the torus link between two neighbor chips."""
        if self.backplane_of(chip_a) == self.backplane_of(chip_b):
            return "backplane"
        if self.rack_of(chip_a) == self.rack_of(chip_b):
            return "intra-rack cable"
        return "inter-rack cable"

    def link_length_cm(self, chip_a: Coord3, chip_b: Coord3) -> float:
        """Representative end-to-end length of a link, nodecard traces
        included."""
        kind = self.classify_link(chip_a, chip_b)
        nodecard = sum(NODECARD_TRACE_CM) / 2.0
        return CONNECTION_LENGTH_CM[kind] + 2 * nodecard

    def link_flight_ns(self, chip_a: Coord3, chip_b: Coord3) -> float:
        """Signal flight time over a link."""
        return self.link_length_cm(chip_a, chip_b) / PROPAGATION_CM_PER_NS

    def links(self) -> Iterator[Tuple[Coord3, Coord3, TorusDirection]]:
        """Every bidirectional torus link once (positive directions only).

        Dimensions of radix 1 have no links; radix-2 dimensions have two
        parallel links per chip pair (the + and - channels), and both are
        yielded.
        """
        for chip in all_coords(self.shape):
            for direction in TORUS_DIRECTIONS:
                radix = self.shape[direction.dim]
                if radix < 2:
                    continue
                if direction.sign < 0 and radix != 2:
                    # For radix > 2, chip->neighbor in the negative
                    # direction is the positive-direction link of the
                    # neighbor; yield each link once.
                    continue
                neighbor = list(chip)
                neighbor[direction.dim] = (
                    neighbor[direction.dim] + direction.sign
                ) % radix
                yield chip, tuple(neighbor), direction

    def link_census(self) -> Dict[str, int]:
        """Count of torus links by classification."""
        census: Counter = Counter()
        for chip_a, chip_b, _direction in self.links():
            census[self.classify_link(chip_a, chip_b)] += 1
        return dict(census)

    def summary(self) -> str:
        census = self.link_census()
        kx, ky, kz = self.shape
        return (
            f"{kx}x{ky}x{kz}: {self.num_chips} nodecards, "
            f"{self.num_backplanes} backplanes, {self.num_racks} racks; links: "
            + ", ".join(f"{count} {kind}" for kind, count in sorted(census.items()))
        )


def supported_machine_sizes() -> Iterator[Coord3]:
    """Machine shapes the single backplane design supports: multiples of
    the 4 x 4 x 1 backplane footprint in x and y, any z, from 16 up to
    the 16 x 16 x 16 maximum."""
    for kx in (4, 8, 12, 16):
        for ky in (4, 8, 12, 16):
            for kz in range(1, 17):
                yield (kx, ky, kz)
