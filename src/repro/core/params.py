"""Physical and architectural constants of the Anton 2 network.

All constants come directly from the paper (Section 2.2 and Section 4).
They are collected here so that models (bandwidth accounting, latency,
energy, area) share a single source of truth, and so that tests can check
the paper's derived numbers (e.g., 2.15 Tb/s of effective I/O per ASIC).
"""

from __future__ import annotations

import dataclasses
import fractions

# --- Torus (inter-node) channels -------------------------------------------

#: SerDes lanes per physical torus channel.
SERDES_PER_CHANNEL = 8

#: Line rate of one SerDes lane, in Gb/s.
SERDES_GBPS = 14.0

#: Raw bandwidth of one torus channel per direction, in Gb/s (8 x 14).
TORUS_CHANNEL_RAW_GBPS = SERDES_PER_CHANNEL * SERDES_GBPS

#: Effective bandwidth of one torus channel per direction after framing,
#: error checking, and go-back-N retransmission overheads, in Gb/s.
TORUS_CHANNEL_EFFECTIVE_GBPS = 89.6

#: The same effective bandwidth as an exact rational (89.6 = 448/5 Gb/s).
#: Timing-critical code must use the exact form: the binary float 89.6
#: carries a representation error that, divided into the mesh bandwidth,
#: would leak into every serialization interval of the simulator.
TORUS_CHANNEL_EFFECTIVE_GBPS_EXACT = fractions.Fraction(896, 10)

#: Number of torus-channel slices (the torus is channel-sliced).
NUM_SLICES = 2

#: Neighbors of a node in the three-dimensional torus.
TORUS_NEIGHBORS = 6

#: Physical torus channels per ASIC (two slices to each of six neighbors).
TORUS_CHANNELS_PER_ASIC = NUM_SLICES * TORUS_NEIGHBORS

#: Effective I/O bandwidth per ASIC in Tb/s (paper: 2.15 Tb/s).
ASIC_EFFECTIVE_IO_TBPS = (
    TORUS_CHANNELS_PER_ASIC * TORUS_CHANNEL_EFFECTIVE_GBPS * 2 / 1000.0
)

# --- On-chip mesh ------------------------------------------------------------

#: On-chip mesh radix per dimension (the mesh is 4 x 4).
MESH_RADIX = 4

#: Bits per mesh channel per direction.
MESH_CHANNEL_BITS = 192

#: On-chip network clock, in GHz.
MESH_CLOCK_GHZ = 1.5

#: Bandwidth of one mesh channel per direction, in Gb/s (192 b x 1.5 GHz).
MESH_CHANNEL_GBPS = MESH_CHANNEL_BITS * MESH_CLOCK_GHZ

#: Mesh channel bandwidth as an exact rational (192 x 3/2 = 288 Gb/s).
MESH_CHANNEL_GBPS_EXACT = fractions.Fraction(MESH_CHANNEL_BITS * 3, 2)

#: Cycles a torus channel needs per flit, exactly: the mesh-to-effective-
#: torus bandwidth ratio 288 / 89.6 reduces to 45/14. The denominator is
#: what fixes the simulator's global tick (1 cycle = 14 ticks on a default
#: machine), so million-cycle saturation runs accumulate zero drift.
TORUS_CYCLES_PER_FLIT = MESH_CHANNEL_GBPS_EXACT / TORUS_CHANNEL_EFFECTIVE_GBPS_EXACT

#: Cycle time of the on-chip network, in nanoseconds.
CYCLE_NS = 1.0 / MESH_CLOCK_GHZ

# --- Packets -----------------------------------------------------------------

#: Header size of a packet, in bytes (common case).
HEADER_BYTES = 8

#: Payload of the common-case packet, in bytes.
TYPICAL_PAYLOAD_BYTES = 16

#: Total size of the common-case packet, in bytes. It fits in one flit.
TYPICAL_PACKET_BYTES = HEADER_BYTES + TYPICAL_PAYLOAD_BYTES

#: Maximum packet: twice the typical packet (32 B payload + 16 B header).
MAX_PACKET_BYTES = 2 * TYPICAL_PACKET_BYTES

#: Flit size, in bytes (one mesh channel transfer: 192 bits = 24 bytes).
FLIT_BYTES = MESH_CHANNEL_BITS // 8

#: Maximum packet size, in flits.
MAX_PACKET_FLITS = MAX_PACKET_BYTES // FLIT_BYTES

# --- Virtual channels and traffic classes ------------------------------------

#: Traffic classes (request and reply) provided to avoid protocol deadlock.
NUM_TRAFFIC_CLASSES = 2

#: VCs per traffic class with the Anton 2 promotion scheme (n + 1 for n = 3).
VCS_PER_CLASS_ANTON = 4

#: VCs per traffic class on T-group channels with the baseline 2n scheme.
VCS_PER_CLASS_BASELINE_T = 6

#: VCs per traffic class on M-group channels with the baseline scheme.
VCS_PER_CLASS_BASELINE_M = 4

#: Total VCs in routers and channel adapters (2 classes x 4 VCs).
TOTAL_VCS_ANTON = NUM_TRAFFIC_CLASSES * VCS_PER_CLASS_ANTON

# --- Component counts per ASIC (Table 1) --------------------------------------

#: Routers per ASIC.
ROUTERS_PER_ASIC = MESH_RADIX * MESH_RADIX

#: Endpoint adapters per ASIC.
ENDPOINTS_PER_ASIC = 23

#: Channel adapters per ASIC (one per torus channel).
CHANNEL_ADAPTERS_PER_ASIC = TORUS_CHANNELS_PER_ASIC

# --- Maximum machine size ------------------------------------------------------

#: Maximum supported torus radix per dimension (16 x 16 x 16 = 4,096 ASICs).
MAX_TORUS_RADIX = 16

# --- Measured latency constants (Section 4.3), used to calibrate models -------

#: Fixed (zero-hop) overhead of the one-way latency linear fit, in ns.
LATENCY_FIXED_NS = 80.7

#: Per-inter-node-hop latency of the linear fit, in ns.
LATENCY_PER_HOP_NS = 39.1

#: Minimum measured inter-node one-way latency, in ns.
LATENCY_MIN_INTERNODE_NS = 99.0

# --- Measured energy-model coefficients (Section 4.5, Figure 13) --------------

#: Fixed energy to send a flit (arbitration/control), in pJ.
ENERGY_FIXED_PJ = 42.7

#: Energy per bit flip between successive valid flits, in pJ.
ENERGY_PER_BITFLIP_PJ = 0.837

#: Fixed activation energy per activation, in pJ.
ENERGY_ACTIVATION_FIXED_PJ = 34.4

#: Activation energy per set payload bit, in pJ.
ENERGY_ACTIVATION_PER_SETBIT_PJ = 0.250


@dataclasses.dataclass(frozen=True)
class BandwidthBudget:
    """Derived bandwidth facts used by the routing-optimization argument.

    The on-chip routing search (Section 2.4) is justified by the fact that a
    mesh channel can carry at least two torus channels' worth of effective
    bandwidth, with room left over for endpoint traffic.
    """

    mesh_channel_gbps: float = MESH_CHANNEL_GBPS
    torus_channel_effective_gbps: float = TORUS_CHANNEL_EFFECTIVE_GBPS

    @property
    def torus_channels_per_mesh_channel(self) -> float:
        """How many torus channels one mesh channel can absorb."""
        return self.mesh_channel_gbps / self.torus_channel_effective_gbps

    @property
    def headroom_after_two_torus_channels_gbps(self) -> float:
        """Mesh bandwidth left after carrying two torus channels of traffic."""
        return self.mesh_channel_gbps - 2 * self.torus_channel_effective_gbps
