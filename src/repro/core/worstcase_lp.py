"""Worst-case switching demands as a linear program [Towles & Dally 2002].

Section 2.4 poses the routing-algorithm evaluation as a linear program:
given a (deterministic) routing algorithm, the load placed on a channel is
linear in the demand matrix, so maximizing any channel's load over the
demand polytope

    D >= 0,  sum_j D[i][j] <= 1 (per source),  sum_i D[i][j] <= 1 (per
    destination)

is an LP whose optimum lies at an extreme point; for this doubly
substochastic polytope the extreme points are the (sub)permutation
matrices, which justifies the permutation enumeration in
:mod:`repro.core.route_search`.

This module solves the LP directly with ``scipy.optimize.linprog`` and is
used to cross-check the enumeration: for every direction order, the LP
optimum equals the permutation-enumeration optimum.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy.optimize import linprog

from . import params
from .chip import ChipFloorplan, default_floorplan
from .geometry import TORUS_DIRECTIONS
from .onchip import ANTON_DIRECTION_ORDER
from .route_search import demand_route


@dataclasses.dataclass
class LpResult:
    """Worst-case load found by the LP for one routing algorithm."""

    #: Maximum over channels of the LP optimum.
    worst_load: float
    #: The channel attaining it, as (slice, from_router, to_router).
    worst_channel: Tuple
    #: The maximizing demand matrix (rows: sources, cols: destinations,
    #: both in TORUS_DIRECTIONS order).
    demand: np.ndarray


def _channel_usage(
    floorplan: ChipFloorplan,
    order: Sequence,
    use_skip: bool,
    directions: Sequence = TORUS_DIRECTIONS,
) -> Dict[Tuple, np.ndarray]:
    """For each mesh channel, the NxN indicator of demands that use it.

    ``directions`` is the inter-node direction set demands arrive from
    and depart to -- all six for the torus, the four planar ones for a
    2D topology (a mesh or chiplet node never sees Z through traffic).
    """
    num_dirs = len(directions)
    usage: Dict[Tuple, np.ndarray] = {}
    for slice_index in range(params.NUM_SLICES):
        for i, src in enumerate(directions):
            for j, dst in enumerate(directions):
                route = demand_route(floorplan, src, dst, slice_index, order, use_skip)
                for link in route.mesh_links:
                    key = (slice_index, link[0], link[1])
                    matrix = usage.setdefault(
                        key, np.zeros((num_dirs, num_dirs))
                    )
                    matrix[i, j] = 1.0
    return usage


def max_channel_load_lp(
    usage_matrix: np.ndarray,
) -> Tuple[float, np.ndarray]:
    """Maximize one channel's load over the doubly substochastic polytope.

    Variables are the 36 demand entries; the objective is the sum of
    entries whose routes use the channel. Returns (optimal load, demand
    matrix).
    """
    num_dirs = usage_matrix.shape[0]
    num_vars = num_dirs * num_dirs
    c = -usage_matrix.reshape(num_vars)
    # Row-sum and column-sum constraints.
    a_ub = np.zeros((2 * num_dirs, num_vars))
    for i in range(num_dirs):
        for j in range(num_dirs):
            a_ub[i, i * num_dirs + j] = 1.0  # row sums
            a_ub[num_dirs + j, i * num_dirs + j] = 1.0  # column sums
    b_ub = np.ones(2 * num_dirs)
    result = linprog(
        c, A_ub=a_ub, b_ub=b_ub, bounds=(0, None), method="highs"
    )
    if not result.success:  # pragma: no cover - LP is always feasible
        raise RuntimeError(f"LP failed: {result.message}")
    return -result.fun, result.x.reshape((num_dirs, num_dirs))


def worst_case_lp(
    floorplan: Optional[ChipFloorplan] = None,
    order: Sequence = ANTON_DIRECTION_ORDER,
    use_skip: bool = True,
    topology=None,
) -> LpResult:
    """The LP worst-case mesh load for one direction-order algorithm.

    ``topology`` (a :class:`~repro.core.topology.Topology`) restricts the
    demand matrix to the directions its links actually carry; ``None``
    keeps the full six-direction torus demand set.
    """
    floorplan = floorplan or default_floorplan()
    directions = (
        TORUS_DIRECTIONS if topology is None else topology.active_directions()
    )
    usage = _channel_usage(floorplan, order, use_skip, directions)
    best_load = 0.0
    best_channel: Tuple = ()
    best_demand = np.zeros((len(directions), len(directions)))
    for channel, matrix in usage.items():
        load, demand = max_channel_load_lp(matrix)
        if load > best_load:
            best_load = load
            best_channel = channel
            best_demand = demand
    return LpResult(
        worst_load=best_load, worst_channel=best_channel, demand=best_demand
    )
