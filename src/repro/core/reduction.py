"""In-network reductions over the torus (the Table 2 "Reduction" logic).

The channel adapters contain logic for accelerating in-network reductions
(Section 4.4 -- 9.6% of the network's area, described by the authors in a
follow-on paper). Functionally, a reduction is the reverse of a
multicast: contributions flow from a set of source nodes toward a root,
combining (sum, min, max, ...) wherever branches meet, so each torus link
carries exactly one partial value instead of every upstream contribution.

This module builds reduction trees (reversed dimension-order multicast
trees, so every leaf-to-root path is a valid minimal unicast route),
evaluates them functionally, and accounts for the bandwidth and latency
advantages over endpoint-based reduction:

* bandwidth: tree edges vs. the sum of per-source unicast hop counts;
* latency: combining happens in parallel along the tree, so completion
  is governed by the deepest leaf, not by serializing all contributions
  through the root's single ejection port.
"""

from __future__ import annotations

import dataclasses
from collections import defaultdict
from typing import Callable, Dict, FrozenSet, Iterable, List, Sequence, Tuple

from .geometry import Coord3, Dim, torus_delta
from .multicast import build_tree, unicast_hops

#: Combining operators the reduction hardware supports.
OPERATORS: Dict[str, Callable[[float, float], float]] = {
    "sum": lambda a, b: a + b,
    "min": min,
    "max": max,
}


@dataclasses.dataclass(frozen=True)
class ReductionTree:
    """A combining tree: directed edges flowing toward the root."""

    root: Coord3
    sources: FrozenSet[Coord3]
    dim_order: Tuple[Dim, ...]
    #: Directed edges (child_chip, parent_chip) toward the root.
    edges: FrozenSet[Tuple[Coord3, Coord3]]

    @property
    def torus_hops(self) -> int:
        return len(self.edges)

    def children_of(self) -> Dict[Coord3, List[Coord3]]:
        """Upstream neighbors per chip (who sends partials to whom)."""
        children: Dict[Coord3, List[Coord3]] = defaultdict(list)
        for child, parent in self.edges:
            children[parent].append(child)
        return dict(children)

    def combining_chips(self) -> List[Coord3]:
        """Chips where two or more partial values merge."""
        children = self.children_of()
        return [
            chip
            for chip, kids in children.items()
            if len(kids) + (1 if chip in self.sources else 0) >= 2
        ]

    def depth(self) -> int:
        """Longest leaf-to-root path, in torus hops."""
        parents = {child: parent for child, parent in self.edges}
        best = 0
        for source in self.sources:
            hops = 0
            node = source
            while node != self.root:
                node = parents[node]
                hops += 1
            best = max(best, hops)
        return best


def build_reduction_tree(
    shape: Coord3,
    root: Coord3,
    sources: Iterable[Coord3],
    dim_order: Sequence[Dim] = (Dim.X, Dim.Y, Dim.Z),
) -> ReductionTree:
    """Build the combining tree as the reverse of a multicast tree.

    The multicast tree from ``root`` to the source set (under the
    *reversed* dimension order) has minimal dimension-order paths to
    every source; reversing its edges yields a reduction tree whose
    leaf-to-root paths are themselves valid minimal dimension-order
    unicast routes (in ``dim_order``), so the partials ride ordinary
    network routes.
    """
    sources = frozenset(sources)
    if not sources:
        raise ValueError("source set is empty")
    if root in sources:
        raise ValueError("the root does not send a contribution to itself")
    reversed_order = tuple(reversed(tuple(dim_order)))
    multicast = build_tree(shape, root, sources, reversed_order)
    edges = frozenset((dst, src) for src, dst in multicast.edges)
    return ReductionTree(
        root=root,
        sources=sources,
        dim_order=tuple(dim_order),
        edges=edges,
    )


def bandwidth_saving(tree: ReductionTree, shape: Coord3) -> int:
    """Torus hops saved versus every source unicasting to the root."""
    return unicast_hops(shape, tree.root, tree.sources) - tree.torus_hops


@dataclasses.dataclass
class ReductionOutcome:
    """Result of functionally evaluating a reduction tree."""

    value: float
    #: Torus hops on the critical (deepest) path.
    critical_hops: int
    #: Number of in-network combining operations performed.
    combines: int
    #: Completion time in cycles under the simple timing model.
    completion_cycles: int


def evaluate(
    tree: ReductionTree,
    contributions: Dict[Coord3, float],
    operator: str = "sum",
    hop_cycles: int = 16,
    combine_cycles: int = 2,
) -> ReductionOutcome:
    """Functionally evaluate the reduction and its completion time.

    Every source contributes one value; partials combine where branches
    meet. Timing: each torus hop costs ``hop_cycles``; each combining
    step costs ``combine_cycles``; a chip forwards its partial once all
    upstream contributions have arrived (the hardware's counted
    combining).
    """
    if set(contributions) != set(tree.sources):
        raise ValueError("contributions must cover exactly the source set")
    combine = OPERATORS.get(operator)
    if combine is None:
        raise ValueError(f"unknown operator {operator!r}; pick from {sorted(OPERATORS)}")

    children = tree.children_of()
    combines = 0

    def resolve(chip: Coord3) -> Tuple[float, int]:
        """(partial value, ready time) of the value leaving ``chip``."""
        nonlocal combines
        parts: List[Tuple[float, int]] = []
        for child in children.get(chip, ()):
            value, ready = resolve(child)
            parts.append((value, ready + hop_cycles))
        if chip in tree.sources:
            parts.append((contributions[chip], 0))
        value, ready = parts[0]
        for other_value, other_ready in parts[1:]:
            value = combine(value, other_value)
            ready = max(ready, other_ready) + combine_cycles
            combines += 1
        return value, ready

    value, ready = resolve(tree.root)
    return ReductionOutcome(
        value=value,
        critical_hops=tree.depth(),
        combines=combines,
        completion_cycles=ready,
    )


def endpoint_reduction_cycles(
    tree: ReductionTree,
    shape: Coord3,
    hop_cycles: int = 16,
    combine_cycles: int = 2,
    ejection_cycles: int = 4,
) -> int:
    """Completion time without in-network combining.

    Every source unicasts to the root, contributions serialize through
    the root's ejection port, and the root combines them one at a time --
    the baseline the reduction hardware beats.
    """
    arrivals = sorted(
        sum(abs(torus_delta(s, r, k)) for s, r, k in zip(source, tree.root, shape))
        * hop_cycles
        for source in tree.sources
    )
    done = 0
    ejected = 0
    for arrival in arrivals:
        ejected = max(ejected, arrival) + ejection_cycles
        done = ejected + combine_cycles
    return done
