"""Whole-machine model: a channel-sliced 3D torus of Anton 2 ASICs.

The :class:`Machine` instantiates every network component (routers,
endpoint adapters, channel adapters) and every directed channel (mesh,
skip, router/adapter links, inter-node torus channels) for a configurable
torus shape, and exposes the lookup tables that routing
(:mod:`repro.core.routing`), the deadlock checker
(:mod:`repro.core.deadlock`) and the simulator (:mod:`repro.sim`) operate
on.

The deadlock analysis of Section 2.5 divides channels into two groups:

* **M-group** -- mesh channels, excluding skip channels and the links
  between routers and torus-channel adapters;
* **T-group** -- skip channels, router/channel-adapter links, and the
  torus channels themselves.

Endpoint-adapter links are pure traffic sources/sinks and belong to
neither group (``ChannelGroup.E``).
"""

from __future__ import annotations

import dataclasses
import enum
import math
from fractions import Fraction
from typing import Dict, Iterator, List, Optional, Tuple, Union

from . import params
from .chip import ChipFloorplan, default_floorplan
from .geometry import (
    Coord2,
    Coord3,
    Dim,
    TORUS_DIRECTIONS,
    TorusDirection,
    all_coords,
)
from .topology import Topology, make_topology


class ComponentKind(enum.IntEnum):
    """The three network component types of Figure 1 / Table 1."""

    ROUTER = 0
    ENDPOINT = 1
    CHANNEL_ADAPTER = 2


class ChannelKind(enum.IntEnum):
    """Physical role of a directed channel."""

    MESH = 0
    SKIP = 1
    ROUTER_TO_CA = 2
    CA_TO_ROUTER = 3
    ROUTER_TO_EP = 4
    EP_TO_ROUTER = 5
    TORUS = 6


class ChannelGroup(enum.IntEnum):
    """Deadlock-analysis channel group (Section 2.5)."""

    M = 0
    T = 1
    E = 2


#: Channel kinds belonging to the T-group.
T_GROUP_KINDS = frozenset(
    {ChannelKind.SKIP, ChannelKind.ROUTER_TO_CA, ChannelKind.CA_TO_ROUTER, ChannelKind.TORUS}
)


def group_of(kind: ChannelKind) -> ChannelGroup:
    """Map a channel kind to its deadlock-analysis group."""
    if kind == ChannelKind.MESH:
        return ChannelGroup.M
    if kind in T_GROUP_KINDS:
        return ChannelGroup.T
    return ChannelGroup.E


def exact_cycles_per_flit(value: Union[int, float, Fraction]) -> Fraction:
    """Coerce a cycles-per-flit value to an exact positive rational.

    Floats are snapped to the nearest small-denominator rational, so a
    caller writing ``3.2`` gets 16/5 rather than the 52-bit binary
    approximation (whose denominator would explode the machine's global
    tick; see :attr:`Machine.ticks_per_cycle`).
    """
    if isinstance(value, float):
        if not math.isfinite(value):
            raise ValueError(f"cycles_per_flit must be finite, got {value}")
        value = Fraction(value).limit_denominator(10**6)
    else:
        value = Fraction(value)
    if value <= 0:
        raise ValueError("cycles_per_flit must be positive")
    return value


@dataclasses.dataclass(frozen=True)
class Component:
    """One network component instance.

    ``detail`` disambiguates within a chip: mesh coordinates for a router,
    ``(direction, slice)`` for a channel adapter, or an integer index for
    an endpoint adapter.
    """

    cid: int
    kind: ComponentKind
    chip: Coord3
    detail: object

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self.kind == ComponentKind.ROUTER:
            return f"R{self.detail}@{self.chip}"
        if self.kind == ComponentKind.ENDPOINT:
            return f"E{self.detail}@{self.chip}"
        direction, slice_index = self.detail
        return f"C[{direction}{slice_index}]@{self.chip}"


@dataclasses.dataclass(frozen=True)
class Channel:
    """One directed channel between two components.

    ``cycles_per_flit`` expresses the channel's bandwidth relative to the
    on-chip clock as an *exact rational*: mesh channels move one flit per
    cycle (``cycles_per_flit = 1``); the effective torus-channel bandwidth
    is 89.6 Gb/s against the mesh's 288 Gb/s, i.e. exactly 45/14 cycles
    per flit. This 1:3.2 ratio is what lets one mesh channel absorb two
    torus channels of through traffic with headroom (Section 2.4). The
    simulator carries channel occupancy in integer ticks (1 cycle =
    :attr:`Machine.ticks_per_cycle` ticks), so the ratio being irrational
    in binary floating point never leaks drift into timing.
    """

    cid: int
    src: int
    dst: int
    kind: ChannelKind
    group: ChannelGroup
    latency: int
    cycles_per_flit: Fraction = Fraction(1)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"ch{self.cid}[{self.kind.name}]"


@dataclasses.dataclass(frozen=True)
class MachineConfig:
    """Configuration of a machine instance.

    Parameters mirror the real machine where they are published and are
    otherwise simulation knobs. Defaults are chosen for faithful behaviour
    at simulation-friendly scale; see DESIGN.md for the scale
    substitutions.
    """

    #: Machine radices. For the default torus topology these are the
    #: torus radices (k_X, k_Y, k_Z); the paper's machine is (8, 8, 8).
    #: Two-axis topologies (``mesh``, ``chiplet``) accept a 2-tuple and
    #: normalize it to ``(k_X, k_Y, 1)``.
    shape: Coord3 = (4, 4, 4)
    #: Endpoint adapters instantiated per chip (the real chip has 23; small
    #: simulations reduce this since idle endpoints only cost memory).
    endpoints_per_chip: int = params.ENDPOINTS_PER_ASIC
    #: VC scheme: "anton" (promotion, n+1 VCs), "baseline" (2n VCs), or
    #: "unsafe-single" (one VC, deadlock-prone -- a negative control used
    #: by the deadlock tests).
    vc_scheme: str = "anton"
    #: Traffic classes instantiated in simulation (the hardware has 2;
    #: experiments drive a single class).
    num_classes: int = 1
    #: Channel latencies, in cycles.
    mesh_latency: int = 1
    skip_latency: int = 1
    adapter_link_latency: int = 1
    torus_latency: int = 12
    #: Per-VC input buffer depth in flits for on-chip channels.
    onchip_buffer_flits: int = 8
    #: Per-VC input buffer depth in flits for torus-channel inputs (the
    #: channel adapters carry deep queues to cover the inter-node
    #: credit round trip; cf. Table 2's queue-dominated channel adapters).
    torus_buffer_flits: int = 64
    #: Cycles a torus channel needs per flit: the mesh-to-effective-torus
    #: bandwidth ratio 288 / 89.6, exactly 45/14. Setting this to 1 models
    #: an (unrealistic) full-speed torus; tests use that to stress the
    #: mesh. Ints, floats, and Fractions are accepted and normalized to an
    #: exact rational (floats via ``exact_cycles_per_flit``).
    torus_cycles_per_flit: Fraction = params.TORUS_CYCLES_PER_FLIT
    #: Extra cycles a packet spends in a component's pipeline (RC, VA, ...)
    #: before it may arbitrate for an output. Zero keeps the fast
    #: one-cycle-per-hop abstraction used by the throughput experiments;
    #: latency-focused studies can set it to the four router stages.
    router_pipeline_cycles: int = 0
    #: Inter-node topology name (:data:`repro.core.topology.TOPOLOGIES`):
    #: ``"torus"`` (the default; the paper's machine), ``"mesh"`` (a
    #: standalone 2D mesh, no datelines), or ``"chiplet"`` (chiplets on
    #: an interposer).
    topology: str = "torus"

    def __post_init__(self) -> None:
        # Building the topology validates (and normalizes) the shape.
        topo = make_topology(self.topology, self.shape)
        object.__setattr__(self, "shape", topo.shape)
        if self.vc_scheme not in ("anton", "baseline", "unsafe-single"):
            raise ValueError(f"unknown vc_scheme {self.vc_scheme!r}")
        if not 1 <= self.num_classes <= params.NUM_TRAFFIC_CLASSES:
            raise ValueError(f"num_classes must be 1 or 2, got {self.num_classes}")
        if not 1 <= self.endpoints_per_chip:
            raise ValueError("endpoints_per_chip must be at least 1")
        for name in (
            "mesh_latency",
            "skip_latency",
            "adapter_link_latency",
            "torus_latency",
            "onchip_buffer_flits",
            "torus_buffer_flits",
        ):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be at least 1")
        # Normalize to an exact rational (frozen dataclass, hence setattr).
        object.__setattr__(
            self,
            "torus_cycles_per_flit",
            exact_cycles_per_flit(self.torus_cycles_per_flit),
        )
        if self.router_pipeline_cycles < 0:
            raise ValueError("router_pipeline_cycles must be nonnegative")

    @property
    def vcs_per_class_m(self) -> int:
        """VCs per traffic class on M-group channels."""
        if self.vc_scheme == "anton":
            return params.VCS_PER_CLASS_ANTON
        if self.vc_scheme == "unsafe-single":
            return 1
        return params.VCS_PER_CLASS_BASELINE_M

    @property
    def vcs_per_class_t(self) -> int:
        """VCs per traffic class on T-group channels."""
        if self.vc_scheme == "anton":
            return params.VCS_PER_CLASS_ANTON
        if self.vc_scheme == "unsafe-single":
            return 1
        return params.VCS_PER_CLASS_BASELINE_T

    @property
    def num_chips(self) -> int:
        kx, ky, kz = self.shape
        return kx * ky * kz

    def make_topology(self) -> Topology:
        """Instantiate this configuration's :class:`Topology`."""
        return make_topology(self.topology, self.shape)


class Machine:
    """A fully elaborated Anton 2 machine (component/channel graph)."""

    def __init__(
        self,
        config: Optional[MachineConfig] = None,
        floorplan: Optional[ChipFloorplan] = None,
    ) -> None:
        self.config = config or MachineConfig()
        #: The inter-node :class:`Topology` (torus by default).
        self.topology: Topology = self.config.make_topology()
        self.floorplan = floorplan or default_floorplan(
            num_endpoints=self.config.endpoints_per_chip
        )
        if self.floorplan.num_endpoints != self.config.endpoints_per_chip:
            raise ValueError(
                "floorplan endpoint count does not match configuration"
            )
        self.components: List[Component] = []
        self.channels: List[Channel] = []
        #: (chip, (u, v)) -> router component id
        self.router_id: Dict[Tuple[Coord3, Coord2], int] = {}
        #: (chip, direction, slice) -> channel-adapter component id
        self.ca_id: Dict[Tuple[Coord3, TorusDirection, int], int] = {}
        #: (chip, endpoint index) -> endpoint component id
        self.ep_id: Dict[Tuple[Coord3, int], int] = {}
        #: (src component id, dst component id) -> channel id
        self.channel_between: Dict[Tuple[int, int], int] = {}
        #: incoming channel ids per component, in input-index order
        self.component_inputs: List[List[int]] = []
        #: outgoing channel ids per component
        self.component_outputs: List[List[int]] = []
        #: input index of each channel at its destination component
        self.input_index: List[int] = []
        #: Integer ticks per on-chip cycle: the LCM of the denominators of
        #: every channel's ``cycles_per_flit``, so each channel's per-flit
        #: occupancy is a whole number of ticks (45 ticks per flit on a
        #: default torus channel, 14 on a mesh channel). The simulator
        #: carries all channel timing in these ticks; see
        #: :mod:`repro.sim.engine`.
        self.ticks_per_cycle: int = 1
        self._build()

    # --- construction -----------------------------------------------------

    def _add_component(self, kind: ComponentKind, chip: Coord3, detail: object) -> int:
        cid = len(self.components)
        self.components.append(Component(cid, kind, chip, detail))
        return cid

    def _add_channel(
        self,
        src: int,
        dst: int,
        kind: ChannelKind,
        latency: int,
        cycles_per_flit: Optional[Fraction] = None,
    ) -> int:
        cid = len(self.channels)
        if cycles_per_flit is None:
            cycles_per_flit = (
                self.config.torus_cycles_per_flit
                if kind == ChannelKind.TORUS
                else Fraction(1)
            )
        channel = Channel(cid, src, dst, kind, group_of(kind), latency, cycles_per_flit)
        self.channels.append(channel)
        key = (src, dst)
        if key in self.channel_between:
            raise ValueError(f"duplicate channel between {src} and {dst}")
        self.channel_between[key] = cid
        return cid

    def _build(self) -> None:
        cfg = self.config
        plan = self.floorplan
        for chip in all_coords(cfg.shape):
            for coord in plan.router_coords():
                self.router_id[(chip, coord)] = self._add_component(
                    ComponentKind.ROUTER, chip, coord
                )
            for (direction, slice_index), _coord in sorted(
                plan.channel_adapter_router.items(),
                key=lambda item: (item[0][0].dim, item[0][0].sign, item[0][1]),
            ):
                self.ca_id[(chip, direction, slice_index)] = self._add_component(
                    ComponentKind.CHANNEL_ADAPTER, chip, (direction, slice_index)
                )
            for index in range(plan.num_endpoints):
                self.ep_id[(chip, index)] = self._add_component(
                    ComponentKind.ENDPOINT, chip, index
                )

        for chip in all_coords(cfg.shape):
            # Mesh channels (both directions of each link).
            for a, b in plan.mesh_links():
                ra = self.router_id[(chip, a)]
                rb = self.router_id[(chip, b)]
                self._add_channel(ra, rb, ChannelKind.MESH, cfg.mesh_latency)
                self._add_channel(rb, ra, ChannelKind.MESH, cfg.mesh_latency)
            # Skip channels.
            for skip in plan.skip_channels:
                ra = self.router_id[(chip, skip.ends[0])]
                rb = self.router_id[(chip, skip.ends[1])]
                self._add_channel(ra, rb, ChannelKind.SKIP, cfg.skip_latency)
                self._add_channel(rb, ra, ChannelKind.SKIP, cfg.skip_latency)
            # Router <-> channel-adapter links.
            for (direction, slice_index), coord in plan.channel_adapter_router.items():
                router = self.router_id[(chip, coord)]
                adapter = self.ca_id[(chip, direction, slice_index)]
                self._add_channel(
                    router, adapter, ChannelKind.ROUTER_TO_CA, cfg.adapter_link_latency
                )
                self._add_channel(
                    adapter, router, ChannelKind.CA_TO_ROUTER, cfg.adapter_link_latency
                )
            # Router <-> endpoint-adapter links.
            for index, coord in enumerate(plan.endpoint_router):
                router = self.router_id[(chip, coord)]
                endpoint = self.ep_id[(chip, index)]
                self._add_channel(
                    router, endpoint, ChannelKind.ROUTER_TO_EP, cfg.adapter_link_latency
                )
                self._add_channel(
                    endpoint, router, ChannelKind.EP_TO_ROUTER, cfg.adapter_link_latency
                )

        # Inter-node channels. A packet departing chip c in direction d
        # arrives at the neighbor's adapter for the opposite direction. The
        # topology decides which links exist (a torus dimension wraps; a
        # mesh/chiplet line has no edge-wrapping link) and what the channel
        # costs (torus cable vs. interposer trace).
        internode_latency = self.topology.internode_latency(cfg)
        internode_cpf = self.topology.internode_cycles_per_flit(cfg)
        for chip in all_coords(cfg.shape):
            for direction in TORUS_DIRECTIONS:
                radix = cfg.shape[direction.dim]
                if radix < 2:
                    continue
                neighbor = self.topology.neighbor(chip, direction)
                if neighbor is None:
                    continue
                for slice_index in range(params.NUM_SLICES):
                    src = self.ca_id[(chip, direction, slice_index)]
                    dst = self.ca_id[(neighbor, direction.opposite, slice_index)]
                    self._add_channel(
                        src,
                        dst,
                        ChannelKind.TORUS,
                        internode_latency,
                        cycles_per_flit=internode_cpf,
                    )

        # Input/output indices.
        self.component_inputs = [[] for _ in self.components]
        self.component_outputs = [[] for _ in self.components]
        self.input_index = [0] * len(self.channels)
        for channel in self.channels:
            inputs = self.component_inputs[channel.dst]
            self.input_index[channel.cid] = len(inputs)
            inputs.append(channel.cid)
            self.component_outputs[channel.src].append(channel.cid)

        self.ticks_per_cycle = math.lcm(
            *(channel.cycles_per_flit.denominator for channel in self.channels)
        )

    # --- queries ------------------------------------------------------------

    def neighbor(self, chip: Coord3, direction: TorusDirection) -> Optional[Coord3]:
        """The coordinate one hop away in ``direction``.

        ``None`` when the topology has no link there (stepping off the
        edge of a non-wrapping dimension); never ``None`` on the torus.
        """
        return self.topology.neighbor(chip, direction)

    def channel(self, src: int, dst: int) -> Channel:
        """The directed channel from component ``src`` to ``dst``."""
        return self.channels[self.channel_between[(src, dst)]]

    def vcs_for_channel(self, channel: Channel) -> int:
        """Total VC count implemented on a channel's destination buffer."""
        cfg = self.config
        if channel.group == ChannelGroup.M:
            per_class = cfg.vcs_per_class_m
        elif channel.group == ChannelGroup.T:
            per_class = cfg.vcs_per_class_t
        else:
            per_class = 1
        return per_class * cfg.num_classes

    def buffer_depth_for_channel(self, channel: Channel) -> int:
        """Per-VC input buffer depth (flits) at a channel's destination."""
        if channel.kind == ChannelKind.TORUS:
            return self.config.torus_buffer_flits
        return self.config.onchip_buffer_flits

    def occupancy_ticks_for_channel(self, channel: Channel) -> int:
        """Exact channel occupancy per flit, in integer ticks.

        ``ticks_per_cycle`` is the LCM of all channel denominators, so the
        product is integral by construction.
        """
        occupancy = channel.cycles_per_flit * self.ticks_per_cycle
        assert occupancy.denominator == 1
        return occupancy.numerator

    def endpoints(self) -> Iterator[Component]:
        """All endpoint adapters, chip-major then index order."""
        for component in self.components:
            if component.kind == ComponentKind.ENDPOINT:
                yield component

    def routers(self) -> Iterator[Component]:
        for component in self.components:
            if component.kind == ComponentKind.ROUTER:
                yield component

    def channel_adapters(self) -> Iterator[Component]:
        for component in self.components:
            if component.kind == ComponentKind.CHANNEL_ADAPTER:
                yield component

    def describe(self) -> str:
        """A short human-readable summary of the machine."""
        kx, ky, kz = self.config.shape
        if self.config.topology != "torus":
            return (
                f"Anton 2 machine {self.topology.describe()} "
                f"({self.config.num_chips} chips, {len(self.components)} "
                f"components, {len(self.channels)} directed channels, "
                f"vc_scheme={self.config.vc_scheme})"
            )
        return (
            f"Anton 2 machine {kx}x{ky}x{kz} "
            f"({self.config.num_chips} chips, {len(self.components)} components, "
            f"{len(self.channels)} directed channels, vc_scheme="
            f"{self.config.vc_scheme})"
        )
