"""Coordinate systems and direction vocabulary for the Anton 2 network.

Two coordinate systems coexist:

* **Torus coordinates** ``(x, y, z)`` locate an ASIC in the three-dimensional
  inter-node torus. The torus dimensions are named X, Y, Z (paper
  Section 2.2).
* **Mesh coordinates** ``(u, v)`` locate a router within an ASIC's 4 x 4
  on-chip mesh. The mesh dimensions are named U, V to avoid confusion with
  the torus dimensions.

Directions are represented as small immutable objects. A torus direction is
a (dimension, sign) pair such as ``X+`` and a mesh direction is one of
``U+, U-, V+, V-``.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Iterator, Sequence, Tuple

Coord3 = Tuple[int, int, int]
Coord2 = Tuple[int, int]


class Dim(enum.IntEnum):
    """A torus dimension."""

    X = 0
    Y = 1
    Z = 2

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


@dataclasses.dataclass(frozen=True, order=True)
class TorusDirection:
    """A signed torus direction, e.g. ``X+`` or ``Z-``.

    ``sign`` is +1 or -1.
    """

    dim: Dim
    sign: int

    def __post_init__(self) -> None:
        if self.sign not in (1, -1):
            raise ValueError(f"sign must be +1 or -1, got {self.sign}")

    @property
    def opposite(self) -> "TorusDirection":
        """The direction pointing the other way along the same dimension."""
        return TorusDirection(self.dim, -self.sign)

    def __str__(self) -> str:
        return f"{self.dim.name}{'+' if self.sign > 0 else '-'}"


#: The six torus directions in canonical order X+, X-, Y+, Y-, Z+, Z-.
TORUS_DIRECTIONS: Tuple[TorusDirection, ...] = tuple(
    TorusDirection(dim, sign) for dim in Dim for sign in (1, -1)
)

XP = TorusDirection(Dim.X, 1)
XM = TorusDirection(Dim.X, -1)
YP = TorusDirection(Dim.Y, 1)
YM = TorusDirection(Dim.Y, -1)
ZP = TorusDirection(Dim.Z, 1)
ZM = TorusDirection(Dim.Z, -1)


class MeshDirection(enum.Enum):
    """A direction in the on-chip mesh: U+, U-, V+ or V-."""

    UP = ("U", 1)
    UM = ("U", -1)
    VP = ("V", 1)
    VM = ("V", -1)

    def __init__(self, axis: str, sign: int) -> None:
        self.axis = axis
        self.sign = sign

    @property
    def delta(self) -> Coord2:
        """The (du, dv) step taken by one hop in this direction."""
        if self.axis == "U":
            return (self.sign, 0)
        return (0, self.sign)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.axis}{'+' if self.sign > 0 else '-'}"


#: All four mesh directions in canonical order.
MESH_DIRECTIONS: Tuple[MeshDirection, ...] = (
    MeshDirection.UP,
    MeshDirection.UM,
    MeshDirection.VP,
    MeshDirection.VM,
)


def torus_delta(src: int, dst: int, radix: int) -> int:
    """Signed minimal displacement from ``src`` to ``dst`` on a ring.

    Returns the displacement with the smallest absolute value; ties (exactly
    half way around an even-radix ring) are broken toward the positive
    direction, matching the deterministic tie-break used by the router's
    route computation. The result is in ``[-radix//2 + 1, radix//2]`` for
    even radix and ``[-(radix-1)//2, (radix-1)//2]`` for odd radix.
    """
    if not 0 <= src < radix or not 0 <= dst < radix:
        raise ValueError(f"coordinates must be in [0, {radix}), got {src}, {dst}")
    delta = (dst - src) % radix
    if delta > radix // 2:
        delta -= radix
    elif delta == radix // 2 and radix % 2 == 0:
        # Exactly half way: both directions are minimal; choose +.
        pass
    return delta


def minimal_deltas(src: int, dst: int, radix: int) -> Tuple[int, ...]:
    """All minimal signed displacements from ``src`` to ``dst`` on a ring.

    Usually a single value; two values (one positive, one negative) when the
    distance is exactly half of an even radix.
    """
    delta = (dst - src) % radix
    if delta == 0:
        return (0,)
    if 2 * delta < radix:
        return (delta,)
    if 2 * delta > radix:
        return (delta - radix,)
    return (delta, delta - radix)


def ring_deltas(src: int, dst: int, radix: int) -> Tuple[int, ...]:
    """All *monotone* signed displacements from ``src`` to ``dst`` on a ring.

    Unlike :func:`minimal_deltas` this includes the non-minimal way around
    the ring (length ``radix - |minimal|``). A monotone displacement never
    reverses direction, so it crosses the dateline at most once and the
    Section 2.5 VC-promotion argument applies to it unchanged; fault-aware
    routing uses these as its non-minimal fallback. Shorter displacements
    come first; ties break toward ``+`` to match :func:`torus_delta`.
    """
    delta = (dst - src) % radix
    if delta == 0:
        return (0,)
    options = {delta, delta - radix}
    return tuple(sorted(options, key=lambda d: (abs(d), -d)))


def torus_hops(src: Coord3, dst: Coord3, shape: Coord3) -> int:
    """Minimal inter-node hop count between two torus coordinates."""
    return sum(
        abs(torus_delta(s, d, k)) for s, d, k in zip(src, dst, shape)
    )


def wrap(coord: int, radix: int) -> int:
    """Wrap a ring coordinate into ``[0, radix)``."""
    return coord % radix


def ring_path(src: int, delta: int, radix: int) -> Iterator[int]:
    """Yield the ring coordinates visited moving ``delta`` from ``src``.

    The first yielded coordinate is the first hop's destination; ``src``
    itself is not yielded. ``delta`` may be negative.
    """
    step = 1 if delta >= 0 else -1
    cur = src
    for _ in range(abs(delta)):
        cur = (cur + step) % radix
        yield cur


def crosses_dateline(src: int, delta: int, radix: int) -> bool:
    """Whether a minimal ring route from ``src`` moving ``delta`` crosses
    the dateline placed between coordinates ``radix - 1`` and ``0``.

    A packet crosses the dateline when its coordinate changes from
    ``radix - 1`` to ``0`` (traveling +) or from ``0`` to ``radix - 1``
    (traveling -). This matches the dateline placement of Section 2.5.
    """
    cur = src
    step = 1 if delta >= 0 else -1
    for _ in range(abs(delta)):
        nxt = (cur + step) % radix
        if (cur == radix - 1 and nxt == 0) or (cur == 0 and nxt == radix - 1):
            return True
        cur = nxt
    return False


def dateline_hop_index(src: int, delta: int, radix: int) -> int:
    """Index (0-based) of the hop that crosses the dateline, or -1 if none.

    Hop ``i`` moves from the ``i``-th to the ``(i+1)``-th coordinate of the
    route.
    """
    cur = src
    step = 1 if delta >= 0 else -1
    for i in range(abs(delta)):
        nxt = (cur + step) % radix
        if (cur == radix - 1 and nxt == 0) or (cur == 0 and nxt == radix - 1):
            return i
        cur = nxt
    return -1


def validate_shape(
    shape: Sequence[int], max_radix: int = 16, num_dims: int = 3
) -> Coord3:
    """Validate a machine shape and return it as a normalized 3-tuple.

    ``num_dims`` is the number of axes the caller's topology exposes
    (3 for the torus, 2 for the planar topologies); shorter shapes are
    padded with degenerate radix-1 dimensions so every coordinate in the
    system stays a 3-tuple. Every radix must be at least 1 and at most
    ``max_radix`` (the paper's maximum machine is 16 x 16 x 16; other
    topologies may impose tighter caps).
    """
    if not 1 <= num_dims <= 3:
        raise ValueError(f"num_dims must be in [1, 3], got {num_dims}")
    if len(shape) != num_dims:
        raise ValueError(
            f"shape must have {num_dims} dimension(s), got {tuple(shape)!r}"
        )
    radices = tuple(int(k) for k in shape)
    for k in radices:
        if not 1 <= k <= max_radix:
            raise ValueError(
                f"radix must be in [1, {max_radix}], got shape {tuple(shape)!r}"
            )
    return radices + (1,) * (3 - num_dims)


def all_coords(shape: Coord3) -> Iterator[Coord3]:
    """Iterate over every torus coordinate of a machine of this shape."""
    kx, ky, kz = shape
    for x in range(kx):
        for y in range(ky):
            for z in range(kz):
                yield (x, y, z)
