"""Direction-order routing on the on-chip mesh (Section 2.4).

A *direction-order* routing algorithm fixes the order in which a packet
may traverse the four mesh directions (U+, U-, V+, V-); dimension-order
(e.g. UV) routing is the special case where both directions of a
dimension are adjacent in the order. Direction-order algorithms are
deterministic, minimal in a mesh, and deadlock-free with a single VC
because the direction transitions form a DAG.

The Anton 2 search (reproduced in :mod:`repro.core.route_search`) found
that the order **V-, U+, U-, V+** minimizes the worst-case mesh-channel
load over all switching demands; that order is the default here.
"""

from __future__ import annotations

import itertools
from typing import Iterator, List, Sequence, Tuple

from .geometry import Coord2, MESH_DIRECTIONS, MeshDirection


#: The optimal direction order found by the Anton 2 design search.
ANTON_DIRECTION_ORDER: Tuple[MeshDirection, ...] = (
    MeshDirection.VM,
    MeshDirection.UP,
    MeshDirection.UM,
    MeshDirection.VP,
)


def validate_direction_order(order: Sequence[MeshDirection]) -> Tuple[MeshDirection, ...]:
    """Check that ``order`` is a permutation of the four mesh directions."""
    order = tuple(order)
    if sorted(d.name for d in order) != sorted(d.name for d in MESH_DIRECTIONS):
        raise ValueError(
            f"direction order must be a permutation of U+/U-/V+/V-, got {order}"
        )
    return order


def all_direction_orders() -> Iterator[Tuple[MeshDirection, ...]]:
    """All 24 direction-order routing algorithms."""
    return itertools.permutations(MESH_DIRECTIONS)


def mesh_route(
    src: Coord2,
    dst: Coord2,
    order: Sequence[MeshDirection] = ANTON_DIRECTION_ORDER,
) -> List[MeshDirection]:
    """The sequence of mesh hops from ``src`` to ``dst`` under ``order``.

    The route takes, for each direction in ``order``, every hop needed in
    that direction; the result is minimal (Manhattan) and deterministic.
    """
    order = validate_direction_order(order)
    du = dst[0] - src[0]
    dv = dst[1] - src[1]
    route: List[MeshDirection] = []
    for direction in order:
        if direction.axis == "U":
            needed = du if direction.sign > 0 else -du
        else:
            needed = dv if direction.sign > 0 else -dv
        if needed > 0:
            route.extend([direction] * needed)
            if direction.axis == "U":
                du = 0
            else:
                dv = 0
    if du != 0 or dv != 0:  # pragma: no cover - order validation prevents this
        raise AssertionError("direction order failed to complete the route")
    return route


def mesh_route_coords(
    src: Coord2,
    dst: Coord2,
    order: Sequence[MeshDirection] = ANTON_DIRECTION_ORDER,
) -> List[Coord2]:
    """Router coordinates visited by :func:`mesh_route`, excluding ``src``."""
    coords: List[Coord2] = []
    u, v = src
    for direction in mesh_route(src, dst, order):
        du, dv = direction.delta
        u, v = u + du, v + dv
        coords.append((u, v))
    return coords


def mesh_route_links(
    src: Coord2,
    dst: Coord2,
    order: Sequence[MeshDirection] = ANTON_DIRECTION_ORDER,
) -> List[Tuple[Coord2, Coord2]]:
    """Directed mesh links traversed from ``src`` to ``dst``."""
    links: List[Tuple[Coord2, Coord2]] = []
    cur = src
    for nxt in mesh_route_coords(src, dst, order):
        links.append((cur, nxt))
        cur = nxt
    return links


def direction_order_name(order: Sequence[MeshDirection]) -> str:
    """Compact name like ``V-,U+,U-,V+`` for reports."""
    return ",".join(str(d) for d in order)


def turn_pairs(order: Sequence[MeshDirection]) -> List[Tuple[MeshDirection, MeshDirection]]:
    """The permitted turns (earlier direction -> later direction).

    Used by the deadlock checker: direction-order routing only ever turns
    from an earlier direction in the order to a strictly later one, so the
    turn relation is acyclic and a single VC suffices within the mesh.
    """
    order = validate_direction_order(order)
    pairs = []
    for i, earlier in enumerate(order):
        for later in order[i + 1 :]:
            pairs.append((earlier, later))
    return pairs
