"""Torus-channel link layer: framing, CRC, and go-back-N retransmission.

Section 2.2: each torus channel is eight 14 Gb/s SerDes lanes (112 Gb/s
raw per direction); "physical and link layers provide framing, error
checking, and go-back-N retransmission, leaving 89.6 Gb/s/direction of
effective bandwidth". This module models that link layer:

* a frame-format accounting model deriving the 20% framing/CRC overhead
  that turns 112 Gb/s raw into 89.6 Gb/s effective;
* a discrete-time go-back-N simulator over a lossy channel, measuring
  goodput and delivery-latency statistics as a function of the frame
  error rate and retransmission window -- the failure-injection story for
  the inter-node channels (a corrupted frame is NAKed and the window is
  replayed, so errors cost bandwidth and latency but never packets).
"""

from __future__ import annotations

import dataclasses
import random
from typing import Dict, List, Optional

from . import params


@dataclasses.dataclass(frozen=True)
class FrameFormat:
    """Link-frame accounting, in bits.

    Defaults reproduce the published efficiency: a 240-bit payload
    (a 192-bit flit plus sideband) carried in a 300-bit frame --
    8b/10b-equivalent coding plus sequence/CRC fields -- is exactly the
    89.6 / 112 = 0.8 efficiency of the real channel.
    """

    payload_bits: int = 240
    #: Physical coding overhead per frame (e.g. lane alignment, DC
    #: balance), in bits.
    coding_bits: int = 36
    #: Sequence number, in bits (bounds the go-back-N window).
    sequence_bits: int = 8
    #: CRC, in bits.
    crc_bits: int = 16

    @property
    def frame_bits(self) -> int:
        return (
            self.payload_bits + self.coding_bits + self.sequence_bits + self.crc_bits
        )

    @property
    def efficiency(self) -> float:
        """Payload fraction of the wire bits."""
        return self.payload_bits / self.frame_bits

    @property
    def max_window(self) -> int:
        """Largest go-back-N window the sequence field supports (N - 1
        outstanding frames for an N-value sequence space)."""
        return (1 << self.sequence_bits) - 1

    def effective_gbps(self, raw_gbps: float = params.TORUS_CHANNEL_RAW_GBPS) -> float:
        """Effective bandwidth after framing at a given raw rate."""
        return raw_gbps * self.efficiency


@dataclasses.dataclass
class GoBackNResult:
    """Measured behaviour of a go-back-N link run."""

    frames_delivered: int
    frames_sent: int
    retransmissions: int
    total_slots: int
    #: Delivery latency (slots from first transmission to in-order
    #: acceptance) per frame.
    latencies: List[int]

    @property
    def goodput(self) -> float:
        """Delivered frames per slot (1.0 = error-free, full window)."""
        return self.frames_delivered / self.total_slots if self.total_slots else 0.0

    @property
    def mean_latency(self) -> float:
        return sum(self.latencies) / len(self.latencies) if self.latencies else 0.0

    @property
    def max_latency(self) -> int:
        return max(self.latencies) if self.latencies else 0


class GoBackNLink:
    """Discrete-time go-back-N simulator for one link direction.

    Time advances in frame slots. The sender keeps up to ``window``
    unacknowledged frames in flight; the receiver accepts only in-order,
    error-free frames and acknowledges cumulatively after ``rtt_slots``.
    A frame is corrupted independently with probability
    ``frame_error_rate``; corrupted or out-of-order frames are dropped,
    forcing the sender to rewind to the oldest unacknowledged frame when
    its timeout (one round trip) expires.
    """

    def __init__(
        self,
        window: int = 32,
        rtt_slots: int = 16,
        frame_error_rate: float = 0.0,
        frame_format: Optional[FrameFormat] = None,
        seed: int = 0,
    ) -> None:
        if window < 1:
            raise ValueError("window must be at least 1")
        if rtt_slots < 1:
            raise ValueError("rtt_slots must be at least 1")
        if not 0.0 <= frame_error_rate < 1.0:
            raise ValueError("frame_error_rate must be in [0, 1)")
        self.frame_format = frame_format or FrameFormat()
        if window > self.frame_format.max_window:
            raise ValueError(
                f"window {window} exceeds the {self.frame_format.sequence_bits}-bit "
                f"sequence space ({self.frame_format.max_window})"
            )
        self.window = window
        self.rtt_slots = rtt_slots
        self.frame_error_rate = frame_error_rate
        self._rng = random.Random(seed)

    def run(self, num_frames: int) -> GoBackNResult:
        """Deliver ``num_frames`` frames, in order, over the lossy link."""
        if num_frames < 1:
            raise ValueError("at least one frame is required")
        base = 0  # oldest unacknowledged frame
        next_to_send = 0
        slot = 0
        frames_sent = 0
        retransmissions = 0
        first_sent: Dict[int, int] = {}
        latencies: List[int] = []
        #: In-flight frames: (arrival slot at receiver, index, corrupted).
        in_flight: List = []
        receiver_expected = 0
        #: Pending cumulative ACKs: (arrival slot at sender, acked index).
        acks: List = []
        timeout_at = None

        while base < num_frames:
            # Deliver ACKs that have arrived back at the sender.
            while acks and acks[0][0] <= slot:
                _t, acked = acks.pop(0)
                if acked > base:
                    base = acked
                    timeout_at = (
                        slot + self.rtt_slots if base < next_to_send else None
                    )
            # Receiver side: process frame arrivals scheduled for now.
            while in_flight and in_flight[0][0] <= slot:
                _t, index, corrupted = in_flight.pop(0)
                if not corrupted and index == receiver_expected:
                    receiver_expected += 1
                    latencies.append(slot - first_sent[index])
                    acks.append((slot + self.rtt_slots // 2, receiver_expected))
                # Corrupted or out-of-order frames are dropped silently;
                # recovery is driven by the sender's timeout.
            # Sender timeout: rewind the window (the "go back" in go-back-N).
            if timeout_at is not None and slot >= timeout_at:
                retransmissions += next_to_send - base
                next_to_send = base
                timeout_at = slot + self.rtt_slots
            # Send one frame per slot while the window is open.
            if next_to_send < num_frames and next_to_send - base < self.window:
                index = next_to_send
                if index >= receiver_expected:
                    corrupted = self._rng.random() < self.frame_error_rate
                    in_flight.append((slot + self.rtt_slots // 2, index, corrupted))
                    first_sent.setdefault(index, slot)
                    frames_sent += 1
                next_to_send += 1
                if timeout_at is None:
                    timeout_at = slot + self.rtt_slots
            slot += 1
            if slot > 100 * num_frames * (1 + self.rtt_slots):  # pragma: no cover
                raise RuntimeError("go-back-N made no progress")

        return GoBackNResult(
            frames_delivered=num_frames,
            frames_sent=frames_sent,
            retransmissions=retransmissions,
            total_slots=slot,
            latencies=latencies,
        )


def effective_bandwidth_sweep(
    error_rates,
    window: int = 32,
    rtt_slots: int = 16,
    num_frames: int = 2000,
    seed: int = 0,
):
    """Goodput (as a fraction of the error-free link) per frame error rate.

    The error-free goodput equals the framing efficiency; errors erode it
    further through window replays -- quantifying how much margin the
    89.6 Gb/s effective figure has against link quality.
    """
    results = []
    fmt = FrameFormat()
    for rate in error_rates:
        link = GoBackNLink(
            window=window,
            rtt_slots=rtt_slots,
            frame_error_rate=rate,
            frame_format=fmt,
            seed=seed,
        )
        outcome = link.run(num_frames)
        results.append((rate, outcome.goodput * fmt.efficiency, outcome))
    return results
