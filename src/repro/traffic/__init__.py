"""Traffic patterns, workload generators, and analytic load computation."""

from .batch import BatchSpec, generate_batch, generate_open_loop
from .md import MdMulticastWorkload, import_region, random_particle_destinations
from .loads import (
    LoadTable,
    active_endpoints,
    compute_loads,
    ideal_batch_cycles,
    merge_arbiter_loads,
)
from .patterns import (
    BitComplement,
    Blend,
    FixedPermutation,
    NHopNeighbor,
    ReverseTornado,
    Tornado,
    TrafficPattern,
    UniformRandom,
)

__all__ = [
    "BatchSpec",
    "MdMulticastWorkload",
    "import_region",
    "random_particle_destinations",
    "BitComplement",
    "Blend",
    "FixedPermutation",
    "LoadTable",
    "NHopNeighbor",
    "ReverseTornado",
    "Tornado",
    "TrafficPattern",
    "UniformRandom",
    "active_endpoints",
    "compute_loads",
    "generate_batch",
    "generate_open_loop",
    "ideal_batch_cycles",
    "merge_arbiter_loads",
]
