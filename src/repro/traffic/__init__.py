"""Traffic patterns, workload generators, and analytic load computation."""

from .adversarial import AdversarialResult, score_permutation, search_worst_permutation
from .batch import BatchSpec, generate_batch, generate_open_loop
from .demand import (
    DemandMatrix,
    DemandMatrixPattern,
    DemandPoint,
    DemandRunResult,
    DemandSchedule,
    DemandSpec,
    as_schedule,
    build_demand_engine,
    generate_demand,
    measure_demand_point,
    run_demand,
)
from .md import MdMulticastWorkload, import_region, random_particle_destinations
from .loads import (
    LoadTable,
    active_endpoints,
    compute_loads,
    ideal_batch_cycles,
    merge_arbiter_loads,
)
from .patterns import (
    BitComplement,
    Blend,
    FixedPermutation,
    NHopNeighbor,
    ReverseTornado,
    Tornado,
    TrafficPattern,
    UniformRandom,
)
from .replay import (
    ReplayError,
    ReplayWorkload,
    build_replay_engine,
    load_replay,
    replay_trace,
)

__all__ = [
    "AdversarialResult",
    "BatchSpec",
    "DemandMatrix",
    "DemandMatrixPattern",
    "DemandPoint",
    "DemandRunResult",
    "DemandSchedule",
    "DemandSpec",
    "MdMulticastWorkload",
    "ReplayError",
    "ReplayWorkload",
    "import_region",
    "random_particle_destinations",
    "BitComplement",
    "Blend",
    "FixedPermutation",
    "LoadTable",
    "NHopNeighbor",
    "ReverseTornado",
    "Tornado",
    "TrafficPattern",
    "UniformRandom",
    "active_endpoints",
    "as_schedule",
    "build_demand_engine",
    "build_replay_engine",
    "compute_loads",
    "generate_batch",
    "generate_demand",
    "generate_open_loop",
    "ideal_batch_cycles",
    "load_replay",
    "measure_demand_point",
    "merge_arbiter_loads",
    "replay_trace",
    "run_demand",
    "score_permutation",
    "search_worst_permutation",
]
