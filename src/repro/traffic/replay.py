"""Trace replay: re-issue a recorded JSONL trace as a workload.

A committed trace (:mod:`repro.sim.trace`) records everything needed to
reconstruct the workload that produced it:

* each packet's ``inject`` event carries its source and destination
  endpoint component ids and its flit count;
* its ordered ``depart`` events enumerate the exact ``(channel, vc)``
  hop sequence it traversed -- the :class:`~repro.core.routing.Route`
  hops, VC promotions included;
* its ``deliver`` event carries ``qlat`` (release-to-delivery cycles),
  so ``release_cycle = deliver_cycle - qlat`` recovers the original
  injection schedule exactly.

Replay rebuilds those packets and *re-simulates* them: the engine is
bit-deterministic given (packets, arbiters), so replaying a run's own
trace regenerates its event stream byte-for-byte -- the conformance
property pinned by the replay test layer and the CI round-trip job. The
header and end records are passed through verbatim (they are provenance,
not simulation output), so the full output file is byte-identical to the
input when -- and only when -- the re-simulation is faithful.

Two reconstruction subtleties the contract depends on:

* **Enqueue order.** Same-cycle timing-wheel events are processed in
  push order, and the pre-run enqueue loop pushes every future release's
  wake event, so the generator's source iteration order is observable.
  Replay therefore enqueues per-source packet blocks in
  :func:`~repro.traffic.loads.active_endpoints` order (the order every
  generator in :mod:`repro.traffic` uses), with each source's packets in
  trace order (= its FIFO queue order).
* **Faulted traces are not replayable.** Reroute/drop/retry dispositions
  overwrite routes mid-flight, so a trace with fault events does not
  contain the original injection schedule; :func:`load_replay` rejects
  such traces with a clear error rather than replaying them wrong.

Arbitration is not recorded per event; traces written by current tooling
carry it in the header (``"arb"``), and ``repro replay`` reconstructs
weight tables for ``iw`` traces from the header's pattern metadata.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.geometry import all_coords
from repro.core.machine import ChannelKind, ComponentKind, Machine, MachineConfig
from repro.core.routing import Route, RouteChoice
from repro.sim.packet import Packet
from repro.sim.trace import EVENT_KINDS, TraceEvent, read_trace

#: Event kinds whose presence makes a trace non-replayable.
FAULT_KINDS = ("fault", "reroute", "drop", "retry")


class ReplayError(ValueError):
    """The trace cannot be replayed (malformed, truncated, or faulted)."""


@dataclasses.dataclass
class ReplayWorkload:
    """A parsed trace, reconstructed into an injectable workload."""

    shape: Tuple[int, int, int]
    endpoints_per_chip: int
    header: dict
    #: Raw metadata record lines before the first event, verbatim.
    prologue: List[str]
    #: Raw metadata record lines after the last event, verbatim.
    epilogue: List[str]
    #: Reconstructed packets: per-source blocks in endpoint-rank order,
    #: each block in trace (= queue) order.
    packets: List[Packet]
    #: Events in the source trace (the regenerated count must match).
    num_events: int
    #: Arbitration policy from the header, or None if absent.
    arbitration: Optional[str]
    #: Optional workload hints from the header (for iw reconstruction).
    pattern: Optional[str]
    cores: Optional[int]


def _reconstruct_packets(
    machine: Machine, events: Sequence[TraceEvent]
) -> List[Packet]:
    """Rebuild every injected packet from its inject/depart/deliver events."""
    injects: Dict[int, TraceEvent] = {}
    hops: Dict[int, List[Tuple[int, int]]] = {}
    release: Dict[int, int] = {}
    order: List[int] = []
    for event in events:
        if event.kind == "inject":
            if event.pid in injects:
                raise ReplayError(
                    f"pid {event.pid} injected twice; retries are not replayable"
                )
            injects[event.pid] = event
            hops[event.pid] = []
            order.append(event.pid)
        elif event.kind == "depart":
            if event.pid in hops:
                hops[event.pid].append((event.channel, event.vc))
        elif event.kind == "deliver":
            if event.pid not in injects:
                raise ReplayError(
                    f"pid {event.pid} delivered without an inject event"
                )
            release[event.pid] = event.cycle - event.get("qlat")

    missing = [pid for pid in order if pid not in release]
    if missing:
        raise ReplayError(
            f"{len(missing)} injected packet(s) never delivered (e.g. pid "
            f"{missing[0]}); the trace is truncated or faulted"
        )

    packets: Dict[int, List[Packet]] = {}
    for pid in order:
        inject = injects[pid]
        src = inject.get("src")
        dst = inject.get("dst")
        hop_list = hops[pid]
        if not hop_list:
            raise ReplayError(f"pid {pid} has no depart events")
        if hop_list[0][0] != inject.channel:
            raise ReplayError(
                f"pid {pid}: first depart channel {hop_list[0][0]} does not "
                f"match its inject channel {inject.channel}"
            )
        for comp_id, role in ((src, "source"), (dst, "destination")):
            if (
                not 0 <= comp_id < len(machine.components)
                or machine.components[comp_id].kind != ComponentKind.ENDPOINT
            ):
                raise ReplayError(
                    f"pid {pid}: {role} component {comp_id} is not an "
                    f"endpoint of this machine"
                )
        internode = sum(
            1
            for channel_id, _vc in hop_list
            if machine.channels[channel_id].kind == ChannelKind.TORUS
        )
        route = Route(
            src=src,
            dst=dst,
            choice=RouteChoice(),
            hops=tuple(hop_list),
            internode_hops=internode,
        )
        packet = Packet(
            pid,
            route,
            size_flits=inject.get("flits", 1),
            release_cycle=release[pid],
        )
        block = packets.setdefault(src, [])
        if block and block[-1].release_cycle > packet.release_cycle:
            raise ReplayError(
                f"source {src}: pid {pid} released at {packet.release_cycle} "
                f"after pid {block[-1].pid} at {block[-1].release_cycle}; "
                f"the trace's injection order is not a queue order"
            )
        block.append(packet)

    # Per-source blocks in generator (active_endpoints) order, so the
    # pre-run wake-event push order matches the original run's.
    rank: Dict[int, int] = {}
    for chip in all_coords(machine.config.shape):
        for index in range(machine.config.endpoints_per_chip):
            rank[machine.ep_id[(chip, index)]] = len(rank)
    ordered: List[Packet] = []
    for src in sorted(packets, key=rank.__getitem__):
        ordered.extend(packets[src])
    return ordered


def load_replay(lines) -> ReplayWorkload:
    """Parse raw JSONL trace lines into a :class:`ReplayWorkload`.

    ``lines`` is any iterable of lines (an open file, a splitlines()
    list). Raises :class:`ReplayError` on traces that cannot round-trip:
    missing machine metadata, fault events, truncation, or metadata
    records interleaved with events.
    """
    import json

    raw = [line.rstrip("\n") for line in lines if line.strip()]
    if not raw:
        raise ReplayError("empty trace")
    kinds = []
    for line in raw:
        obj = json.loads(line)
        kinds.append(obj.get("ev") in EVENT_KINDS)
    first_event = kinds.index(True) if any(kinds) else len(raw)
    last_event = len(kinds) - 1 - kinds[::-1].index(True) if any(kinds) else -1
    if not all(kinds[first_event : last_event + 1]):
        raise ReplayError(
            "metadata records interleaved with events; cannot replay verbatim"
        )
    prologue = raw[:first_event]
    epilogue = raw[last_event + 1 :]
    records, events = read_trace(raw)

    header = records[0] if records else {}
    if header.get("ev") != "trace":
        raise ReplayError("trace has no header record ('ev': 'trace')")
    schema = header.get("schema")
    if schema != 1:
        raise ReplayError(f"unsupported trace schema {schema!r}")
    shape = header.get("shape")
    endpoints = header.get("endpoints")
    if shape is None or endpoints is None:
        raise ReplayError(
            "trace header lacks 'shape'/'endpoints'; cannot rebuild the machine"
        )
    shape = tuple(shape)

    faulted = sorted({e.kind for e in events if e.kind in FAULT_KINDS})
    if faulted:
        raise ReplayError(
            f"trace contains {'/'.join(faulted)} events; fault dispositions "
            f"are policy decisions the trace does not record, so faulted "
            f"traces are not bitwise-replayable"
        )
    if not events:
        raise ReplayError("trace contains no events")

    machine = Machine(
        MachineConfig(shape=shape, endpoints_per_chip=int(endpoints))
    )
    tpc = header.get("tpc")
    if tpc is not None and tpc != machine.ticks_per_cycle:
        raise ReplayError(
            f"trace timebase tpc={tpc} does not match the machine's "
            f"{machine.ticks_per_cycle}"
        )
    return ReplayWorkload(
        shape=shape,
        endpoints_per_chip=int(endpoints),
        header=header,
        prologue=prologue,
        epilogue=epilogue,
        packets=_reconstruct_packets(machine, events),
        num_events=len(events),
        arbitration=header.get("arb"),
        pattern=header.get("pattern"),
        cores=header.get("cores"),
    )


def build_replay_engine(
    machine: Machine,
    workload: ReplayWorkload,
    arbitration: Optional[str] = None,
    weight_patterns=None,
    trace=None,
    use_fastpath: Optional[bool] = None,
):
    """An engine at cycle 0 with the replay workload enqueued.

    ``arbitration`` defaults to the trace header's ``arb`` field (falling
    back to round-robin). ``iw`` needs ``weight_patterns`` to reprogram
    the weight tables -- the CLI reconstructs them from the header's
    ``pattern``/``cores`` fields.
    """
    from repro.core.routing import RouteComputer
    from repro.sim.engine import Engine
    from repro.sim.simulator import (
        arbiter_builder_for,
        make_vc_weight_tables,
        make_weight_tables,
    )

    if machine.config.shape != workload.shape or (
        machine.config.endpoints_per_chip != workload.endpoints_per_chip
    ):
        raise ReplayError("machine does not match the trace header")
    policy = arbitration or workload.arbitration or "rr"
    weight_tables = vc_weight_tables = None
    if policy == "iw":
        if weight_patterns is None:
            raise ReplayError(
                "replaying an inverse-weighted trace needs weight_patterns "
                "(reconstructed from the trace header's pattern metadata)"
            )
        routes = RouteComputer(machine)
        cores = workload.cores or machine.config.endpoints_per_chip
        weight_tables = make_weight_tables(machine, routes, weight_patterns, cores)
        vc_weight_tables = make_vc_weight_tables(
            machine, routes, weight_patterns, cores
        )
    builder = arbiter_builder_for(policy, weight_tables)
    vc_builder = arbiter_builder_for(policy, vc_weight_tables)
    engine = Engine(
        machine,
        arbiter_builder=builder,
        vc_arbiter_builder=vc_builder,
        trace=trace,
        use_fastpath=use_fastpath,
    )
    for packet in workload.packets:
        engine.enqueue(packet)
    return engine


def replay_trace(
    lines,
    out_stream=None,
    arbitration: Optional[str] = None,
    weight_patterns=None,
    use_fastpath: Optional[bool] = None,
    max_cycles: int = 10_000_000,
):
    """Replay a trace end to end; returns ``(stats, workload, events)``.

    When ``out_stream`` is given, the replayed trace is written to it:
    the original metadata records verbatim, the regenerated events in
    between. For a faithful replay the output is byte-identical to the
    input.
    """
    from repro.sim.trace import JsonlTraceWriter

    workload = load_replay(lines)
    machine = Machine(
        MachineConfig(
            shape=workload.shape,
            endpoints_per_chip=workload.endpoints_per_chip,
        )
    )
    writer = None
    if out_stream is not None:
        for line in workload.prologue:
            out_stream.write(line)
            out_stream.write("\n")
        writer = JsonlTraceWriter(out_stream, header=False)
    engine = build_replay_engine(
        machine,
        workload,
        arbitration=arbitration,
        weight_patterns=weight_patterns,
        trace=writer,
        use_fastpath=use_fastpath,
    )
    stats = engine.run(max_cycles=max_cycles)
    events_written = 0
    if writer is not None:
        writer.flush()
        events_written = writer.events_written
        for line in workload.epilogue:
            out_stream.write(line)
            out_stream.write("\n")
    return stats, workload, events_written
