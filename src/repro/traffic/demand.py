"""Demand-matrix workloads: arbitrary N x N rate matrices over the torus.

The paper's evaluation drives the network with a handful of analytic
patterns (Sections 4.1-4.2), but design-space exploration needs
*arbitrary* communication demands: hotspots, skewed popularity, explicit
permutations, and demands that change over time. This module represents
such a workload as a :class:`DemandMatrix` -- an N x N matrix of
injection rates (packets per source endpoint per cycle), rows indexed by
source node, columns by destination node, nodes in
:func:`repro.core.geometry.all_coords` order -- in the style of the
demand-matrix-driven switch simulators (e.g. rotorsim).

Time-varying workloads are piecewise constant: a :class:`DemandSchedule`
holds ``(start_cycle, DemandMatrix)`` epochs, and the generator resolves
the schedule into concrete release cycles up front. Because packets are
fully pre-generated (like :func:`repro.traffic.batch.generate_batch`),
demand workloads are automatically compatible with the engine checkpoint
schema: the workload state *is* the serialized source queues, so
split-run resume is bitwise-identical with no schema change.

Injection modes
---------------

* ``mode="closed"`` -- batch-style: each source sends
  ``round(packets_scale * row_sum)`` packets as fast as the network
  accepts them (all released at cycle 0);
* ``mode="open"`` with ``injection="bernoulli"`` -- one biased coin per
  source per cycle at rate ``min(1, row_sum)``;
* ``mode="open"`` with ``injection="paced"`` -- a deterministic rate
  accumulator (credit/Bresenham style): per cycle the source banks
  ``min(1, row_sum)`` packets and emits whenever the bank reaches one.
  Paced injection makes "offered load never exceeds the matrix row sum"
  a *hard* per-source invariant, not a statistical one, which is what
  the conservation-law tests pin.

RNG draw order (seeded workloads depend on it): sources are visited in
:func:`~repro.traffic.loads.active_endpoints` order; for each source,
cycles (open) or packet slots (closed) in increasing order; each emitted
packet draws through :class:`repro.traffic.batch._RouteSampler` --
destination, endpoint index (uniform mode only), then route choice.
Bernoulli injection draws one ``rng.random()`` per (source, cycle) of
every epoch whose row rate is positive; zero-rate spans draw nothing.
"""

from __future__ import annotations

import dataclasses
import json
import math
import random
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.geometry import Coord3, all_coords
from repro.core.machine import Machine, MachineConfig
from repro.core.routing import RouteComputer
from repro.sim.packet import Packet
from repro.sim.stats import SimStats

from .batch import _RouteSampler
from .loads import active_endpoints
from .patterns import TrafficPattern


def _num_nodes(shape: Coord3) -> int:
    return shape[0] * shape[1] * shape[2]


@dataclasses.dataclass(frozen=True)
class DemandMatrix:
    """An N x N injection-rate matrix over the nodes of one torus shape.

    ``rates[i][j]`` is the rate (packets per source endpoint per cycle)
    at which sources on node ``i`` send to node ``j``; node indices
    follow :func:`~repro.core.geometry.all_coords` order. Every endpoint
    participating on a chip injects at that chip's row rates, so the
    chip-level offered load scales with ``cores_per_chip``.
    """

    shape: Coord3
    rates: Tuple[Tuple[float, ...], ...]
    name: str = "demand"

    def __post_init__(self) -> None:
        n = _num_nodes(self.shape)
        object.__setattr__(
            self, "rates", tuple(tuple(float(v) for v in row) for row in self.rates)
        )
        if len(self.rates) != n or any(len(row) != n for row in self.rates):
            raise ValueError(
                f"rates must be {n}x{n} for shape {self.shape}, got "
                f"{len(self.rates)} row(s)"
            )
        for row in self.rates:
            for value in row:
                if not math.isfinite(value) or value < 0:
                    raise ValueError(f"rates must be finite and >= 0, got {value}")

    # -- node bookkeeping ------------------------------------------------

    def nodes(self) -> List[Coord3]:
        return list(all_coords(self.shape))

    def node_index(self) -> Dict[Coord3, int]:
        return {node: i for i, node in enumerate(all_coords(self.shape))}

    def row(self, index: int) -> Tuple[float, ...]:
        return self.rates[index]

    def row_sum(self, index: int) -> float:
        return sum(self.rates[index])

    def row_sums(self) -> List[float]:
        return [sum(row) for row in self.rates]

    def max_row_sum(self) -> float:
        return max(self.row_sums())

    def total_rate(self) -> float:
        return sum(self.row_sums())

    def scaled(self, factor: float, name: Optional[str] = None) -> "DemandMatrix":
        if factor < 0:
            raise ValueError("scale factor must be >= 0")
        return DemandMatrix(
            shape=self.shape,
            rates=tuple(tuple(v * factor for v in row) for row in self.rates),
            name=name if name is not None else self.name,
        )

    # -- serialization ---------------------------------------------------

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(
            {
                "shape": list(self.shape),
                "name": self.name,
                "rates": [list(row) for row in self.rates],
            },
            sort_keys=True,
            indent=indent,
        )

    @classmethod
    def from_json(cls, text: str) -> "DemandMatrix":
        obj = json.loads(text)
        try:
            shape = tuple(obj["shape"])
            rates = obj["rates"]
        except (KeyError, TypeError) as exc:
            raise ValueError(f"demand matrix JSON missing field: {exc}")
        if len(shape) != 3:
            raise ValueError(f"shape must have 3 dimensions, got {shape}")
        return cls(shape=shape, rates=rates, name=obj.get("name", "demand"))

    # -- seeded generators ----------------------------------------------

    @classmethod
    def uniform(cls, shape: Coord3, rate: float) -> "DemandMatrix":
        """Every source spreads ``rate`` evenly over all other nodes."""
        n = _num_nodes(shape)
        if n < 2:
            raise ValueError("uniform demand needs at least 2 nodes")
        share = rate / (n - 1)
        rates = tuple(
            tuple(0.0 if i == j else share for j in range(n)) for i in range(n)
        )
        return cls(shape=shape, rates=rates, name=f"demand-uniform-r{rate:g}")

    @classmethod
    def hotspot(
        cls,
        shape: Coord3,
        rate: float,
        hotspots: int = 1,
        hot_fraction: float = 0.5,
        seed: int = 0,
    ) -> "DemandMatrix":
        """Seeded hotspot demand: each source sends ``hot_fraction`` of
        its ``rate`` to ``hotspots`` randomly chosen hot nodes and the
        rest uniformly elsewhere. A source that is itself hot redirects
        its self-share to the remaining hot nodes (or to the background
        if it is the only one)."""
        n = _num_nodes(shape)
        if n < 2:
            raise ValueError("hotspot demand needs at least 2 nodes")
        if not 1 <= hotspots < n:
            raise ValueError(f"hotspots must be in [1, {n - 1}], got {hotspots}")
        if not 0.0 <= hot_fraction <= 1.0:
            raise ValueError(f"hot_fraction must be in [0, 1], got {hot_fraction}")
        rng = random.Random(seed)
        hot = sorted(rng.sample(range(n), hotspots))
        hot_set = set(hot)
        rows = []
        for i in range(n):
            row = [0.0] * n
            targets = [j for j in hot if j != i]
            cold = [j for j in range(n) if j != i and j not in hot_set]
            hot_share = rate * hot_fraction
            cold_share = rate - hot_share
            if not targets:
                # The lone hot node sends everything to the background.
                cold_share = rate
                hot_share = 0.0
            if not cold:
                hot_share += cold_share
                cold_share = 0.0
            for j in targets:
                row[j] += hot_share / len(targets)
            for j in cold:
                row[j] += cold_share / len(cold)
            rows.append(tuple(row))
        return cls(
            shape=shape,
            rates=tuple(rows),
            name=(
                f"demand-hotspot-r{rate:g}-h{hotspots}"
                f"-f{hot_fraction:g}-s{seed}"
            ),
        )

    @classmethod
    def skewed(
        cls,
        shape: Coord3,
        rate: float,
        exponent: float = 1.0,
        seed: int = 0,
    ) -> "DemandMatrix":
        """Zipf-skewed destination popularity: node popularity follows
        ``1 / (rank + 1) ** exponent`` with a seeded random assignment of
        ranks to nodes; each row spreads ``rate`` over the other nodes in
        proportion to their popularity."""
        n = _num_nodes(shape)
        if n < 2:
            raise ValueError("skewed demand needs at least 2 nodes")
        if exponent < 0:
            raise ValueError(f"exponent must be >= 0, got {exponent}")
        rng = random.Random(seed)
        ranks = list(range(n))
        rng.shuffle(ranks)
        weights = [1.0 / (ranks[j] + 1) ** exponent for j in range(n)]
        rows = []
        for i in range(n):
            others = [(j, weights[j]) for j in range(n) if j != i]
            total = sum(w for _j, w in others)
            row = [0.0] * n
            for j, w in others:
                row[j] = rate * w / total
            rows.append(tuple(row))
        return cls(
            shape=shape,
            rates=tuple(rows),
            name=f"demand-skew-r{rate:g}-e{exponent:g}-s{seed}",
        )

    @classmethod
    def permutation(
        cls, shape: Coord3, rate: float = 1.0, seed: int = 0
    ) -> "DemandMatrix":
        """A seeded random permutation demand (no fixed points): each
        source sends its whole ``rate`` to exactly one distinct node."""
        n = _num_nodes(shape)
        if n < 2:
            raise ValueError("permutation demand needs at least 2 nodes")
        rng = random.Random(seed)
        targets = list(range(n))
        while True:
            rng.shuffle(targets)
            if all(targets[i] != i for i in range(n)):
                break
        rows = []
        for i in range(n):
            row = [0.0] * n
            row[targets[i]] = rate
            rows.append(tuple(row))
        return cls(
            shape=shape,
            rates=tuple(rows),
            name=f"demand-perm-r{rate:g}-s{seed}",
        )

    @classmethod
    def from_mapping(
        cls,
        shape: Coord3,
        mapping: Dict[Coord3, Coord3],
        rate: float = 1.0,
        name: str = "demand-perm",
    ) -> "DemandMatrix":
        """The demand matrix of an explicit node permutation (the form
        the adversarial search emits)."""
        index = {node: i for i, node in enumerate(all_coords(shape))}
        n = _num_nodes(shape)
        if set(mapping) != set(index) or set(mapping.values()) != set(index):
            raise ValueError("mapping must be a permutation of all nodes")
        rows = [[0.0] * n for _ in range(n)]
        for src, dst in mapping.items():
            rows[index[src]][index[dst]] = rate
        return cls(
            shape=shape, rates=tuple(tuple(r) for r in rows), name=name
        )


@dataclasses.dataclass(frozen=True)
class DemandSchedule:
    """A piecewise-constant sequence of demand matrices over cycles.

    ``epochs`` is a tuple of ``(start_cycle, DemandMatrix)`` pairs; the
    first epoch must start at cycle 0 and starts must strictly increase.
    Each epoch's matrix applies from its start up to the next epoch's
    start (the last epoch extends to the end of the run).
    """

    epochs: Tuple[Tuple[int, DemandMatrix], ...]

    def __post_init__(self) -> None:
        epochs = tuple((int(start), matrix) for start, matrix in self.epochs)
        object.__setattr__(self, "epochs", epochs)
        if not epochs:
            raise ValueError("schedule needs at least one epoch")
        if epochs[0][0] != 0:
            raise ValueError(
                f"first epoch must start at cycle 0, got {epochs[0][0]}"
            )
        starts = [start for start, _m in epochs]
        if any(b <= a for a, b in zip(starts, starts[1:])):
            raise ValueError(f"epoch starts must strictly increase: {starts}")
        shapes = {matrix.shape for _s, matrix in epochs}
        if len(shapes) != 1:
            raise ValueError(f"all epochs must share one shape, got {shapes}")

    @property
    def shape(self) -> Coord3:
        return self.epochs[0][1].shape

    @property
    def name(self) -> str:
        if len(self.epochs) == 1:
            return self.epochs[0][1].name
        return f"schedule[{len(self.epochs)}]({self.epochs[0][1].name},...)"

    @classmethod
    def from_matrices(
        cls, matrices: Sequence[DemandMatrix], epoch_length: int
    ) -> "DemandSchedule":
        """Equal-length epochs: matrix ``k`` applies from cycle
        ``k * epoch_length``."""
        if epoch_length < 1:
            raise ValueError("epoch_length must be at least 1")
        return cls(
            epochs=tuple(
                (k * epoch_length, matrix) for k, matrix in enumerate(matrices)
            )
        )

    def matrix_at(self, cycle: int) -> DemandMatrix:
        """The matrix in force at ``cycle``."""
        current = self.epochs[0][1]
        for start, matrix in self.epochs:
            if start > cycle:
                break
            current = matrix
        return current

    def spans(self, duration_cycles: int) -> List[Tuple[int, int, int]]:
        """Concrete ``(start, end, epoch_index)`` half-open spans covering
        ``[0, duration_cycles)``."""
        spans = []
        for k, (start, _matrix) in enumerate(self.epochs):
            end = (
                self.epochs[k + 1][0]
                if k + 1 < len(self.epochs)
                else duration_cycles
            )
            end = min(end, duration_cycles)
            if start >= end:
                continue
            spans.append((start, end, k))
        return spans


Demand = Union[DemandMatrix, DemandSchedule]


def as_schedule(demand: Demand) -> DemandSchedule:
    """Normalize a bare matrix into a one-epoch schedule."""
    if isinstance(demand, DemandSchedule):
        return demand
    if isinstance(demand, DemandMatrix):
        return DemandSchedule(epochs=((0, demand),))
    raise TypeError(f"expected DemandMatrix or DemandSchedule, got {type(demand)!r}")


#: Generator names accepted by :func:`matrix_from_params` (and therefore
#: by ``repro demand --generator`` and serve-protocol demand specs).
GENERATOR_NAMES = (
    "uniform", "hotspot", "skew", "permutation", "adversarial", "file",
)


def matrix_from_params(
    shape: Coord3,
    generator: str,
    rate: float,
    seed: int = 0,
    hotspots: int = 1,
    hot_fraction: float = 0.5,
    skew_exponent: float = 1.0,
    matrix_json: Optional[str] = None,
    restarts: int = 3,
    steps: int = 60,
    cores_per_chip: int = 2,
    machine: Optional[Machine] = None,
    route_computer: Optional[RouteComputer] = None,
) -> DemandMatrix:
    """Build one demand matrix from named generator parameters.

    The single authority behind every surface that accepts generator
    parameters -- ``repro demand --generator ...`` epoch construction and
    the serve protocol's ``create``/``submit_demand`` demand specs -- so
    the same parameters always denote the same matrix. ``seed`` drives
    the seeded generators; the adversarial search additionally needs an
    elaborated machine and route computer (built on demand when omitted).
    """
    if generator == "uniform":
        return DemandMatrix.uniform(shape, rate)
    if generator == "hotspot":
        return DemandMatrix.hotspot(
            shape,
            rate,
            hotspots=hotspots,
            hot_fraction=hot_fraction,
            seed=seed,
        )
    if generator == "skew":
        return DemandMatrix.skewed(shape, rate, exponent=skew_exponent, seed=seed)
    if generator == "permutation":
        return DemandMatrix.permutation(shape, rate=rate, seed=seed)
    if generator == "adversarial":
        from .adversarial import search_worst_permutation

        if machine is None:
            machine = Machine(MachineConfig(shape=shape, endpoints_per_chip=2))
        if route_computer is None:
            route_computer = RouteComputer(machine)
        result = search_worst_permutation(
            machine,
            route_computer,
            seed=seed,
            restarts=restarts,
            steps=steps,
            cores_per_chip=cores_per_chip,
            include_lp_bound=False,
        )
        return result.demand.scaled(rate, name=f"{result.demand.name}-r{rate:g}")
    if generator == "file":
        if matrix_json is None:
            raise ValueError("generator 'file' needs the matrix JSON text")
        return DemandMatrix.from_json(matrix_json)
    raise ValueError(
        f"unknown demand generator {generator!r}; known: {', '.join(GENERATOR_NAMES)}"
    )


class DemandMatrixPattern(TrafficPattern):
    """One demand matrix viewed as a :class:`TrafficPattern`.

    The destination distribution of a source node is its matrix row,
    normalized -- which is exactly what the analytic load computation and
    the shared :class:`~repro.traffic.batch._RouteSampler` consume. The
    *rate* information (row sums) lives in the generators below; the
    pattern carries only the conditional where-to distribution.
    """

    node_symmetric = False

    def __init__(self, matrix: DemandMatrix) -> None:
        super().__init__(matrix.shape)
        self.matrix = matrix
        index = matrix.node_index()
        nodes = matrix.nodes()
        self._dests: Dict[Coord3, List[Tuple[Coord3, float]]] = {}
        self._cdf: Dict[Coord3, List[Tuple[float, Coord3]]] = {}
        for src in nodes:
            row = matrix.row(index[src])
            total = sum(row)
            dests = []
            cdf = []
            if total > 0:
                acc = 0.0
                for j, value in enumerate(row):
                    if value <= 0:
                        continue
                    prob = value / total
                    dests.append((nodes[j], prob))
                    acc += prob
                    cdf.append((acc, nodes[j]))
            self._dests[src] = dests
            self._cdf[src] = cdf

    @property
    def name(self) -> str:
        return self.matrix.name

    def destinations(self, src: Coord3) -> List[Tuple[Coord3, float]]:
        return list(self._dests[src])

    def sample(self, rng: random.Random, src: Coord3) -> Coord3:
        cdf = self._cdf[src]
        if not cdf:
            raise ValueError(f"source {src} has zero demand; nothing to sample")
        roll = rng.random()
        for acc, dst in cdf:
            if roll < acc:
                return dst
        return cdf[-1][1]


@dataclasses.dataclass(frozen=True)
class DemandSpec:
    """Parameters of one demand-matrix workload.

    ``demand`` is a :class:`DemandMatrix` or :class:`DemandSchedule`
    (closed-loop runs use the cycle-0 matrix). Open-loop runs emit over
    ``duration_cycles``; closed-loop runs emit
    ``round(packets_scale * row_sum)`` packets per source, all at
    cycle 0.
    """

    demand: Demand
    cores_per_chip: int
    mode: str = "open"
    duration_cycles: int = 0
    packets_scale: float = 1.0
    injection: str = "bernoulli"
    dst_endpoint_mode: str = "same_index"
    size_flits: int = 1
    traffic_class: int = 0
    seed: int = 0

    def __post_init__(self) -> None:
        as_schedule(self.demand)  # validates the type
        if self.mode not in ("open", "closed"):
            raise ValueError(f"mode must be 'open' or 'closed', got {self.mode!r}")
        if self.injection not in ("bernoulli", "paced"):
            raise ValueError(
                f"injection must be 'bernoulli' or 'paced', got {self.injection!r}"
            )
        if self.mode == "open" and self.duration_cycles < 1:
            raise ValueError("open-loop demand needs duration_cycles >= 1")
        if self.mode == "closed" and self.packets_scale <= 0:
            raise ValueError("closed-loop demand needs packets_scale > 0")
        if self.dst_endpoint_mode not in ("same_index", "uniform"):
            raise ValueError(
                f"unknown dst_endpoint_mode {self.dst_endpoint_mode!r}"
            )

    @property
    def schedule(self) -> DemandSchedule:
        return as_schedule(self.demand)


def generate_demand(
    machine: Machine, route_computer: RouteComputer, spec: DemandSpec
) -> List[Packet]:
    """Generate the packets of a demand workload (see the module
    docstring for the injection modes and the RNG draw order).

    All packets are pre-generated with concrete release cycles, so the
    resulting engine state checkpoints with the existing schema and the
    fast path sees an ordinary batch.
    """
    schedule = spec.schedule
    if schedule.shape != machine.config.shape:
        raise ValueError(
            f"demand shape {schedule.shape} does not match machine shape "
            f"{machine.config.shape}"
        )
    samplers = [
        _RouteSampler(
            machine,
            route_computer,
            DemandMatrixPattern(matrix),
            spec.cores_per_chip,
            spec.dst_endpoint_mode,
            spec.size_flits,
            spec.traffic_class,
        )
        for _start, matrix in schedule.epochs
    ]
    node_index = schedule.epochs[0][1].node_index()
    rng = random.Random(spec.seed)
    packets: List[Packet] = []
    pid = 0

    if spec.mode == "closed":
        matrix = schedule.epochs[0][1]
        sampler = samplers[0]
        for src_ep in active_endpoints(machine, spec.cores_per_chip):
            src_comp = machine.components[src_ep]
            row_sum = matrix.row_sum(node_index[src_comp.chip])
            count = int(round(spec.packets_scale * row_sum))
            for _ in range(count):
                packets.append(
                    sampler.draw(rng, src_comp.chip, src_comp.detail, pid, 0)
                )
                pid += 1
        return packets

    spans = schedule.spans(spec.duration_cycles)
    for src_ep in active_endpoints(machine, spec.cores_per_chip):
        src_comp = machine.components[src_ep]
        row_index = node_index[src_comp.chip]
        bank = 0.0  # paced-injection accumulator, carried across epochs
        for start, end, k in spans:
            matrix = schedule.epochs[k][1]
            sampler = samplers[k]
            rate = min(1.0, matrix.row_sum(row_index))
            if rate <= 0.0:
                continue
            for cycle in range(start, end):
                if spec.injection == "bernoulli":
                    if rng.random() >= rate:
                        continue
                    emit = 1
                else:
                    bank += rate
                    emit = int(bank)
                    bank -= emit
                for _ in range(emit):
                    packets.append(
                        sampler.draw(
                            rng, src_comp.chip, src_comp.detail, pid, cycle
                        )
                    )
                    pid += 1
    return packets


def build_demand_engine(
    machine: Machine,
    route_computer: RouteComputer,
    spec: DemandSpec,
    arbitration: str = "rr",
    weight_patterns: Optional[Sequence[TrafficPattern]] = None,
    weight_tables=None,
    vc_weight_tables=None,
    weight_bits: Optional[int] = None,
    keep_packet_latencies: bool = False,
    trace=None,
    latency_quantiles: bool = False,
    faults=None,
    use_fastpath: Optional[bool] = None,
    source_filter=None,
):
    """Construct a cycle-0 engine with a full demand workload enqueued.

    The demand analogue of
    :func:`repro.sim.simulator.build_batch_engine`. For
    ``arbitration="iw"`` without explicit tables, the weights are
    programmed from the cycle-0 matrix's conditional distribution
    (:class:`DemandMatrixPattern`) -- demand matrices are generally not
    translation symmetric, so the exhaustive load path is used.
    """
    from repro.sim.engine import Engine
    from repro.sim.simulator import (
        DEFAULT_WEIGHT_BITS,
        arbiter_builder_for,
        make_vc_weight_tables,
        make_weight_tables,
    )
    from repro.traffic.loads import compute_loads

    if weight_bits is None:
        weight_bits = DEFAULT_WEIGHT_BITS
    num_patterns = 1
    if arbitration == "iw":
        if weight_tables is None or vc_weight_tables is None:
            if weight_patterns is None:
                weight_patterns = [
                    DemandMatrixPattern(spec.schedule.epochs[0][1])
                ]
            load_tables = [
                compute_loads(
                    machine,
                    route_computer,
                    pattern,
                    spec.cores_per_chip,
                    spec.dst_endpoint_mode,
                )
                for pattern in weight_patterns
            ]
            if weight_tables is None:
                weight_tables = make_weight_tables(
                    machine,
                    route_computer,
                    weight_patterns,
                    spec.cores_per_chip,
                    spec.dst_endpoint_mode,
                    weight_bits,
                    load_tables=load_tables,
                )
            if vc_weight_tables is None:
                vc_weight_tables = make_vc_weight_tables(
                    machine,
                    route_computer,
                    weight_patterns,
                    spec.cores_per_chip,
                    spec.dst_endpoint_mode,
                    weight_bits,
                    load_tables=load_tables,
                )
        for table in weight_tables.values():
            num_patterns = table.num_patterns
            break
    builder = arbiter_builder_for(arbitration, weight_tables, num_patterns, weight_bits)
    vc_builder = arbiter_builder_for(
        arbitration, vc_weight_tables, num_patterns, weight_bits
    )
    engine = Engine(
        machine,
        arbiter_builder=builder,
        vc_arbiter_builder=vc_builder,
        keep_packet_latencies=keep_packet_latencies,
        trace=trace,
        latency_quantiles=latency_quantiles,
        faults=faults,
        use_fastpath=use_fastpath,
    )
    for packet in generate_demand(machine, route_computer, spec):
        if source_filter is not None and not source_filter(packet.src):
            continue
        engine.enqueue(packet)
    return engine


def run_demand(
    machine: Machine,
    route_computer: RouteComputer,
    spec: DemandSpec,
    arbitration: str = "rr",
    weight_patterns: Optional[Sequence[TrafficPattern]] = None,
    weight_tables=None,
    vc_weight_tables=None,
    max_cycles: int = 10_000_000,
    keep_packet_latencies: bool = False,
    trace=None,
    latency_quantiles: bool = False,
    faults=None,
    checkpoint_path: Optional[str] = None,
    checkpoint_every: int = 0,
    use_fastpath: Optional[bool] = None,
) -> SimStats:
    """Run one demand-matrix experiment and return its statistics.

    Mirrors :func:`repro.sim.simulator.run_batch`, including the
    checkpoint/resume contract: an existing ``checkpoint_path`` marks an
    interrupted run and is resumed bitwise-identically (workload state
    needs no extra serialization because packets are pre-generated into
    the checkpointed source queues).
    """
    from repro.sim.simulator import run_engine

    def build():
        return build_demand_engine(
            machine,
            route_computer,
            spec,
            arbitration=arbitration,
            weight_patterns=weight_patterns,
            weight_tables=weight_tables,
            vc_weight_tables=vc_weight_tables,
            keep_packet_latencies=keep_packet_latencies,
            trace=trace,
            latency_quantiles=latency_quantiles,
            faults=faults,
            use_fastpath=use_fastpath,
        )

    return run_engine(
        build,
        trace=trace,
        max_cycles=max_cycles,
        checkpoint_path=checkpoint_path,
        checkpoint_every=checkpoint_every,
        use_fastpath=use_fastpath,
        machine=machine,
    )


@dataclasses.dataclass(frozen=True)
class DemandPoint:
    """One demand workload as a sweep point (picklable, fingerprintable).

    Pairs with :func:`measure_demand_point` for
    :class:`repro.sim.sweep.SweepPoint` fan-out: both the point and the
    measure function are module-level, so process pools and the sweep
    fingerprint cache handle them like any batch point.
    """

    config: MachineConfig
    spec: DemandSpec
    arbitration: str = "rr"
    label: str = ""


@dataclasses.dataclass
class DemandRunResult:
    """Aggregate outcome of one demand sweep point."""

    label: str
    generated: int
    delivered: int
    dropped: int
    end_cycle: int
    #: Offered packets per source per cycle (open-loop; 0 for closed).
    offered_rate: float
    #: Delivered packets per source per cycle over the full run.
    achieved_rate: float


def measure_demand_point(point: DemandPoint) -> DemandRunResult:
    """Build the machine, run the demand workload, reduce to a result."""
    machine = Machine(point.config)
    routes = RouteComputer(machine)
    stats = run_demand(
        machine, routes, point.spec, arbitration=point.arbitration
    )
    num_sources = len(active_endpoints(machine, point.spec.cores_per_chip))
    offered = 0.0
    if point.spec.mode == "open" and point.spec.duration_cycles > 0:
        offered = stats.injected / (num_sources * point.spec.duration_cycles)
    achieved = (
        stats.delivered / (num_sources * stats.end_cycle)
        if stats.end_cycle
        else 0.0
    )
    return DemandRunResult(
        label=point.label or point.spec.schedule.name,
        generated=stats.injected,
        delivered=stats.delivered,
        dropped=stats.dropped,
        end_cycle=stats.end_cycle,
        offered_rate=offered,
        achieved_rate=achieved,
    )
