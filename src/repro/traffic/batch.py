"""Workload generation: batches and open-loop injection processes.

The paper's throughput experiments (Section 4.1) use a *batch*
methodology: every participating core sends a fixed number of packets
according to a traffic pattern as fast as the network accepts them, and
throughput is the batch size divided by the time at which the last packet
is received. Batches also expose fairness: beyond saturation, an unfair
network finishes some sources long before others, stretching the
completion time (Figure 9).
"""

from __future__ import annotations

import dataclasses
import random
from typing import List, Optional

from repro.core.machine import Machine
from repro.core.routing import RouteComputer
from repro.sim.packet import Packet

from .loads import active_endpoints
from .patterns import Blend, TrafficPattern


@dataclasses.dataclass(frozen=True)
class BatchSpec:
    """Parameters of one batch workload."""

    pattern: TrafficPattern
    packets_per_source: int
    cores_per_chip: int
    dst_endpoint_mode: str = "same_index"
    size_flits: int = 1
    traffic_class: int = 0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.packets_per_source < 1:
            raise ValueError("packets_per_source must be at least 1")
        if self.dst_endpoint_mode not in ("same_index", "uniform"):
            raise ValueError(f"unknown dst_endpoint_mode {self.dst_endpoint_mode!r}")


def generate_batch(
    machine: Machine, route_computer: RouteComputer, spec: BatchSpec
) -> List[Packet]:
    """Generate the packets of a batch, all released at cycle zero.

    Destinations, route choices (dimension order, slice, tie-breaks) and
    blend membership are drawn from a seeded RNG, so workloads are
    reproducible. Packets drawn from a :class:`~repro.traffic.patterns.Blend`
    carry the index of their component pattern in the ``pattern`` header
    field.
    """
    if spec.pattern.shape != machine.config.shape:
        raise ValueError("pattern shape does not match the machine")
    rng = random.Random(spec.seed)
    sources = active_endpoints(machine, spec.cores_per_chip)
    packets: List[Packet] = []
    pid = 0
    is_blend = isinstance(spec.pattern, Blend)
    for src_ep in sources:
        src_comp = machine.components[src_ep]
        src_chip = src_comp.chip
        src_index = src_comp.detail
        for _ in range(spec.packets_per_source):
            if is_blend:
                dst_chip, pattern_id = spec.pattern.sample_with_pattern(rng, src_chip)
            else:
                dst_chip = spec.pattern.sample(rng, src_chip)
                pattern_id = 0
            if spec.dst_endpoint_mode == "same_index":
                dst_index = src_index
            else:
                dst_index = rng.randrange(spec.cores_per_chip)
            dst_ep = machine.ep_id[(dst_chip, dst_index)]
            choice = route_computer.random_choice(rng, src_chip, dst_chip)
            route = route_computer.compute(
                src_ep, dst_ep, choice, spec.traffic_class
            )
            packets.append(
                Packet(
                    pid,
                    route,
                    size_flits=spec.size_flits,
                    pattern=pattern_id,
                    traffic_class=spec.traffic_class,
                    release_cycle=0,
                )
            )
            pid += 1
    return packets


def generate_open_loop(
    machine: Machine,
    route_computer: RouteComputer,
    pattern: TrafficPattern,
    injection_rate: float,
    duration_cycles: int,
    cores_per_chip: int,
    dst_endpoint_mode: str = "same_index",
    size_flits: int = 1,
    seed: int = 0,
    traffic_class: int = 0,
) -> List[Packet]:
    """Open-loop Bernoulli injection at ``injection_rate`` packets per
    source per cycle, for latency-versus-load style experiments."""
    if not 0 < injection_rate <= 1:
        raise ValueError(f"injection_rate must be in (0, 1], got {injection_rate}")
    rng = random.Random(seed)
    sources = active_endpoints(machine, cores_per_chip)
    packets: List[Packet] = []
    pid = 0
    is_blend = isinstance(pattern, Blend)
    for src_ep in sources:
        src_comp = machine.components[src_ep]
        src_chip = src_comp.chip
        src_index = src_comp.detail
        for cycle in range(duration_cycles):
            if rng.random() >= injection_rate:
                continue
            if is_blend:
                dst_chip, pattern_id = pattern.sample_with_pattern(rng, src_chip)
            else:
                dst_chip = pattern.sample(rng, src_chip)
                pattern_id = 0
            if dst_endpoint_mode == "same_index":
                dst_index = src_index
            else:
                dst_index = rng.randrange(cores_per_chip)
            dst_ep = machine.ep_id[(dst_chip, dst_index)]
            choice = route_computer.random_choice(rng, src_chip, dst_chip)
            route = route_computer.compute(src_ep, dst_ep, choice, traffic_class)
            packets.append(
                Packet(
                    pid,
                    route,
                    size_flits=size_flits,
                    pattern=pattern_id,
                    traffic_class=traffic_class,
                    release_cycle=cycle,
                )
            )
            pid += 1
    return packets
