"""Workload generation: batches and open-loop injection processes.

The paper's throughput experiments (Section 4.1) use a *batch*
methodology: every participating core sends a fixed number of packets
according to a traffic pattern as fast as the network accepts them, and
throughput is the batch size divided by the time at which the last packet
is received. Batches also expose fairness: beyond saturation, an unfair
network finishes some sources long before others, stretching the
completion time (Figure 9).
"""

from __future__ import annotations

import dataclasses
import random
from typing import List, Optional

from repro.core.machine import Machine
from repro.core.routing import RouteComputer
from repro.sim.packet import Packet

from .loads import active_endpoints
from .patterns import Blend, TrafficPattern


class _RouteSampler:
    """Destination/route sampling shared by the batch and open-loop
    generators.

    Both generators draw, per packet: a destination chip (blend-aware), a
    destination endpoint index (``dst_endpoint_mode``), and a randomized
    route choice -- in that RNG order, which seeded workloads depend on.
    Centralizing the draw keeps blend handling and endpoint-mode handling
    from drifting apart between the two generators.
    """

    def __init__(
        self,
        machine: Machine,
        route_computer: RouteComputer,
        pattern: TrafficPattern,
        cores_per_chip: int,
        dst_endpoint_mode: str,
        size_flits: int,
        traffic_class: int,
    ) -> None:
        if dst_endpoint_mode not in ("same_index", "uniform"):
            raise ValueError(f"unknown dst_endpoint_mode {dst_endpoint_mode!r}")
        if pattern.shape != machine.config.shape:
            raise ValueError("pattern shape does not match the machine")
        self.machine = machine
        self.route_computer = route_computer
        self.pattern = pattern
        self.cores_per_chip = cores_per_chip
        self.dst_endpoint_mode = dst_endpoint_mode
        self.size_flits = size_flits
        self.traffic_class = traffic_class
        self.is_blend = isinstance(pattern, Blend)

    def draw(
        self,
        rng: random.Random,
        src_chip,
        src_index: int,
        pid: int,
        release_cycle: int,
    ) -> Packet:
        """Draw one packet for a source endpoint."""
        if self.is_blend:
            dst_chip, pattern_id = self.pattern.sample_with_pattern(rng, src_chip)
        else:
            dst_chip = self.pattern.sample(rng, src_chip)
            pattern_id = 0
        if self.dst_endpoint_mode == "same_index":
            dst_index = src_index
        else:
            dst_index = rng.randrange(self.cores_per_chip)
        dst_ep = self.machine.ep_id[(dst_chip, dst_index)]
        choice = self.route_computer.random_choice(rng, src_chip, dst_chip)
        src_ep = self.machine.ep_id[(src_chip, src_index)]
        route = self.route_computer.compute(
            src_ep, dst_ep, choice, self.traffic_class
        )
        return Packet(
            pid,
            route,
            size_flits=self.size_flits,
            pattern=pattern_id,
            traffic_class=self.traffic_class,
            release_cycle=release_cycle,
        )


@dataclasses.dataclass(frozen=True)
class BatchSpec:
    """Parameters of one batch workload."""

    pattern: TrafficPattern
    packets_per_source: int
    cores_per_chip: int
    dst_endpoint_mode: str = "same_index"
    size_flits: int = 1
    traffic_class: int = 0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.packets_per_source < 1:
            raise ValueError("packets_per_source must be at least 1")
        if self.dst_endpoint_mode not in ("same_index", "uniform"):
            raise ValueError(f"unknown dst_endpoint_mode {self.dst_endpoint_mode!r}")


def generate_batch(
    machine: Machine, route_computer: RouteComputer, spec: BatchSpec
) -> List[Packet]:
    """Generate the packets of a batch, all released at cycle zero.

    Destinations, route choices (dimension order, slice, tie-breaks) and
    blend membership are drawn from a seeded RNG, so workloads are
    reproducible. Packets drawn from a :class:`~repro.traffic.patterns.Blend`
    carry the index of their component pattern in the ``pattern`` header
    field.
    """
    sampler = _RouteSampler(
        machine,
        route_computer,
        spec.pattern,
        spec.cores_per_chip,
        spec.dst_endpoint_mode,
        spec.size_flits,
        spec.traffic_class,
    )
    rng = random.Random(spec.seed)
    packets: List[Packet] = []
    pid = 0
    for src_ep in active_endpoints(machine, spec.cores_per_chip):
        src_comp = machine.components[src_ep]
        for _ in range(spec.packets_per_source):
            packets.append(
                sampler.draw(rng, src_comp.chip, src_comp.detail, pid, 0)
            )
            pid += 1
    return packets


def generate_open_loop(
    machine: Machine,
    route_computer: RouteComputer,
    pattern: TrafficPattern,
    injection_rate: float,
    duration_cycles: int,
    cores_per_chip: int,
    dst_endpoint_mode: str = "same_index",
    size_flits: int = 1,
    seed: int = 0,
    traffic_class: int = 0,
) -> List[Packet]:
    """Open-loop Bernoulli injection at ``injection_rate`` packets per
    source per cycle, for latency-versus-load style experiments."""
    if not 0 < injection_rate <= 1:
        raise ValueError(f"injection_rate must be in (0, 1], got {injection_rate}")
    sampler = _RouteSampler(
        machine,
        route_computer,
        pattern,
        cores_per_chip,
        dst_endpoint_mode,
        size_flits,
        traffic_class,
    )
    rng = random.Random(seed)
    packets: List[Packet] = []
    pid = 0
    for src_ep in active_endpoints(machine, cores_per_chip):
        src_comp = machine.components[src_ep]
        for cycle in range(duration_cycles):
            if rng.random() >= injection_rate:
                continue
            packets.append(
                sampler.draw(rng, src_comp.chip, src_comp.detail, pid, cycle)
            )
            pid += 1
    return packets
