"""MD-like multicast workload: particle broadcasts to import regions.

Molecular dynamics on Anton 2 decomposes space across nodes; each
timestep, a particle's position is broadcast to the set of neighboring
nodes whose *import region* contains it [Shaw et al. 2009]. This module
synthesizes that workload:

* import-region destination sets (full-shell or half-shell neighborhood
  of the home node, the standard spatial-decomposition interaction
  methods);
* per-node multicast tables ("several hundred distinct destination sets
  per node" -- here one per particle bucket, built once and reused, as in
  the real machine's initialization);
* aggregate inter-node bandwidth accounting comparing multicast trees
  against per-destination unicasts, with alternating dimension orders for
  load balance (the Figure 3 mechanism at workload scale).
"""

from __future__ import annotations

import dataclasses
import random
from typing import Dict, FrozenSet, List, Sequence, Tuple

from repro.core.geometry import Coord3, Dim, all_coords
from repro.core.multicast import (
    MulticastTree,
    build_tree,
    directional_loads,
    max_directional_load,
    multicast_savings,
    unicast_hops,
)


def import_region(
    home: Coord3, shape: Coord3, radius: int = 1, method: str = "full-shell"
) -> FrozenSet[Coord3]:
    """The destination set for particles homed at ``home``.

    ``"full-shell"`` is the symmetric neighborhood (all nodes within
    ``radius`` hops per dimension, excluding home); ``"half-shell"``
    halves it by importing only the lexicographically positive half,
    which is the classic bandwidth optimization.
    """
    if radius < 1:
        raise ValueError("radius must be at least 1")
    offsets = range(-radius, radius + 1)
    nodes = []
    for dx in offsets:
        for dy in offsets:
            for dz in offsets:
                if (dx, dy, dz) == (0, 0, 0):
                    continue
                if method == "half-shell" and (dx, dy, dz) < (0, 0, 0):
                    continue
                node = (
                    (home[0] + dx) % shape[0],
                    (home[1] + dy) % shape[1],
                    (home[2] + dz) % shape[2],
                )
                if node != home:
                    nodes.append(node)
    if method not in ("full-shell", "half-shell"):
        raise ValueError(f"unknown method {method!r}")
    return frozenset(nodes)


@dataclasses.dataclass
class MdMulticastWorkload:
    """One timestep's broadcast traffic for an MD decomposition."""

    shape: Coord3
    radius: int = 1
    method: str = "full-shell"
    #: Alternating dimension orders used to balance torus-channel load.
    dim_orders: Sequence[Tuple[Dim, Dim, Dim]] = (
        (Dim.X, Dim.Y, Dim.Z),
        (Dim.Z, Dim.Y, Dim.X),
    )

    def trees_for(self, home: Coord3) -> List[MulticastTree]:
        """The alternating multicast trees loaded into ``home``'s tables."""
        region = import_region(home, self.shape, self.radius, self.method)
        return [
            build_tree(self.shape, home, region, order)
            for order in self.dim_orders
        ]

    def per_particle_savings(self, home: Coord3) -> int:
        """Torus hops saved per particle broadcast versus unicasts."""
        tree = self.trees_for(home)[0]
        return multicast_savings(tree, self.shape)

    def table_entries_per_node(self, particle_buckets: int = 256) -> int:
        """Distinct destination sets a node's tables hold.

        Each spatial bucket of particles shares a destination set; the
        paper cites several hundred distinct sets per node.
        """
        return particle_buckets * len(self.dim_orders)

    def aggregate_stats(self, particles_per_node: int = 64) -> Dict[str, float]:
        """Machine-wide bandwidth accounting for one timestep.

        Returns total torus hops with multicast and with unicast, the
        savings ratio, and the peak per-direction channel load with and
        without dimension-order alternation.
        """
        multicast_hops_total = 0
        unicast_hops_total = 0
        nodes = list(all_coords(self.shape))
        sample = nodes[0]
        trees = self.trees_for(sample)
        region = import_region(sample, self.shape, self.radius, self.method)
        per_tree_hops = [tree.torus_hops for tree in trees]
        per_unicast = unicast_hops(self.shape, sample, region)
        # Node symmetry: every home node contributes identically.
        per_node_multicast = sum(per_tree_hops) / len(trees)
        multicast_hops_total = len(nodes) * particles_per_node * per_node_multicast
        unicast_hops_total = len(nodes) * particles_per_node * per_unicast
        weights = [1.0 / len(trees)] * len(trees)
        balanced_peak = max_directional_load(
            directional_loads(trees, weights, self.shape)
        )
        single_peak = max_directional_load(
            directional_loads([trees[0]], [1.0], self.shape)
        )
        return {
            "multicast_hops": multicast_hops_total,
            "unicast_hops": unicast_hops_total,
            "savings_ratio": 1.0 - multicast_hops_total / unicast_hops_total,
            "peak_direction_load_single": single_peak,
            "peak_direction_load_alternating": balanced_peak,
        }


def random_particle_destinations(
    workload: MdMulticastWorkload,
    particles_per_node: int,
    seed: int = 0,
) -> List[Tuple[Coord3, FrozenSet[Coord3]]]:
    """(home, destination set) pairs for a randomized particle population.

    Destination sets vary per particle only through the home node here;
    sub-node bucketing is a table-size concern, not a bandwidth one.
    """
    rng = random.Random(seed)
    nodes = list(all_coords(workload.shape))
    result = []
    for _ in range(particles_per_node * len(nodes)):
        home = nodes[rng.randrange(len(nodes))]
        result.append(
            (home, import_region(home, workload.shape, workload.radius, workload.method))
        )
    return result
