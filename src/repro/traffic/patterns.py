"""Traffic patterns used in the paper's evaluation (Sections 4.1-4.2).

All patterns are defined at *node* granularity: a pattern maps a source
torus coordinate to a probability distribution over destination torus
coordinates. The harness (:mod:`repro.traffic.batch`) maps node-level
patterns onto endpoint adapters.

Implemented patterns:

* :class:`UniformRandom` -- every other node equally likely.
* :class:`NHopNeighbor` -- destinations at most ``n`` hops away along
  *each* dimension of the torus [Agarwal 1991], the locality-controlled
  family of Figure 9.
* :class:`Tornado` and :class:`ReverseTornado` -- the diametrically
  opposed patterns of Figure 10: node ``(x, y, z)`` sends to
  ``(x + kx/2 - 1, y + ky/2 - 1, z + kz/2 - 1)`` (respectively minus).
* :class:`BitComplement` -- a classic adversarial permutation, used in
  extra stress tests.
* :class:`FixedPermutation` -- any explicit node permutation.
* :class:`Blend` -- a probabilistic mixture of patterns; packets carry
  the index of the pattern they were drawn from, which is exactly the
  header field the inverse-weighted arbiter keys on.
"""

from __future__ import annotations

import abc
import random
from typing import Dict, List, Sequence, Tuple

from repro.core.geometry import Coord3, all_coords, torus_delta


class TrafficPattern(abc.ABC):
    """A node-level traffic pattern over a torus of a given shape."""

    #: Whether the pattern is invariant under torus translation (the
    #: destination distribution of ``src + t`` is the distribution of
    #: ``src`` shifted by ``t``). Symmetric patterns allow the analytic
    #: load computation to enumerate sources on a single chip and
    #: translate the result over the machine.
    node_symmetric = False

    def __init__(self, shape: Coord3) -> None:
        self.shape = shape

    @property
    @abc.abstractmethod
    def name(self) -> str:
        """Short name for reports."""

    @abc.abstractmethod
    def destinations(self, src: Coord3) -> List[Tuple[Coord3, float]]:
        """The destination distribution for packets sourced at ``src``.

        Returns ``(destination, probability)`` pairs; probabilities sum
        to 1.
        """

    def sample(self, rng: random.Random, src: Coord3) -> Coord3:
        """Draw one destination. Default: inverse-CDF over
        :meth:`destinations`; subclasses override with direct draws."""
        roll = rng.random()
        acc = 0.0
        dests = self.destinations(src)
        for dst, prob in dests:
            acc += prob
            if roll < acc:
                return dst
        return dests[-1][0]

    def mean_hops(self) -> float:
        """Average minimal inter-node hops per packet (analytic)."""
        total = 0.0
        count = 0
        for src in all_coords(self.shape):
            for dst, prob in self.destinations(src):
                hops = sum(
                    abs(torus_delta(s, d, k))
                    for s, d, k in zip(src, dst, self.shape)
                )
                total += prob * hops
            count += 1
        return total / count


class UniformRandom(TrafficPattern):
    """Uniform random traffic: any node other than the source."""

    node_symmetric = True

    def __init__(self, shape: Coord3, include_self: bool = False) -> None:
        super().__init__(shape)
        self.include_self = include_self
        self._nodes = list(all_coords(shape))

    @property
    def name(self) -> str:
        return "uniform"

    def destinations(self, src: Coord3) -> List[Tuple[Coord3, float]]:
        candidates = (
            self._nodes
            if self.include_self
            else [node for node in self._nodes if node != src]
        )
        prob = 1.0 / len(candidates)
        return [(node, prob) for node in candidates]

    def sample(self, rng: random.Random, src: Coord3) -> Coord3:
        while True:
            dst = self._nodes[rng.randrange(len(self._nodes))]
            if self.include_self or dst != src:
                return dst


class NHopNeighbor(TrafficPattern):
    """Destinations within ``n`` hops along each dimension, excluding self."""

    node_symmetric = True

    def __init__(self, shape: Coord3, hops: int) -> None:
        super().__init__(shape)
        if hops < 1:
            raise ValueError(f"hops must be at least 1, got {hops}")
        self.hops = hops
        #: Per-dimension signed offsets reachable within ``hops``; on small
        #: rings offsets alias, so deduplicate destination coordinates.
        self._offsets_by_dim = []
        for k in shape:
            offsets = sorted(
                {delta % k for delta in range(-hops, hops + 1)}
            )
            self._offsets_by_dim.append(offsets)

    @property
    def name(self) -> str:
        return f"{self.hops}-hop-neighbor"

    def destinations(self, src: Coord3) -> List[Tuple[Coord3, float]]:
        dests = []
        for dx in self._offsets_by_dim[0]:
            for dy in self._offsets_by_dim[1]:
                for dz in self._offsets_by_dim[2]:
                    dst = (
                        (src[0] + dx) % self.shape[0],
                        (src[1] + dy) % self.shape[1],
                        (src[2] + dz) % self.shape[2],
                    )
                    if dst != src:
                        dests.append(dst)
        prob = 1.0 / len(dests)
        return [(dst, prob) for dst in dests]

    def sample(self, rng: random.Random, src: Coord3) -> Coord3:
        while True:
            dst = tuple(
                (src[d] + rng.choice(self._offsets_by_dim[d])) % self.shape[d]
                for d in range(3)
            )
            if dst != src:
                return dst


class _OffsetPattern(TrafficPattern):
    """Deterministic pattern sending each node to ``node + offset``."""

    node_symmetric = True

    def __init__(self, shape: Coord3, offset: Coord3, name: str) -> None:
        super().__init__(shape)
        self.offset = offset
        self._name = name

    @property
    def name(self) -> str:
        return self._name

    def destination_of(self, src: Coord3) -> Coord3:
        return tuple((src[d] + self.offset[d]) % self.shape[d] for d in range(3))

    def destinations(self, src: Coord3) -> List[Tuple[Coord3, float]]:
        return [(self.destination_of(src), 1.0)]

    def sample(self, rng: random.Random, src: Coord3) -> Coord3:
        return self.destination_of(src)


class Tornado(_OffsetPattern):
    """Tornado traffic [Singh et al. 2002]: offset ``k_D / 2 - 1`` in each
    dimension (dimensions of radix 2 get offset 0, i.e. no movement)."""

    def __init__(self, shape: Coord3) -> None:
        offset = tuple(k // 2 - 1 if k >= 2 else 0 for k in shape)
        super().__init__(shape, offset, "tornado")


class ReverseTornado(_OffsetPattern):
    """The opposite of tornado: offset ``-(k_D / 2 - 1)`` per dimension."""

    def __init__(self, shape: Coord3) -> None:
        offset = tuple(-(k // 2 - 1) if k >= 2 else 0 for k in shape)
        super().__init__(shape, offset, "reverse-tornado")


class BitComplement(TrafficPattern):
    """Bit-complement permutation: coordinate ``c`` maps to ``k - 1 - c``."""

    def __init__(self, shape: Coord3) -> None:
        super().__init__(shape)

    @property
    def name(self) -> str:
        return "bit-complement"

    def destinations(self, src: Coord3) -> List[Tuple[Coord3, float]]:
        dst = tuple(self.shape[d] - 1 - src[d] for d in range(3))
        return [(dst, 1.0)]

    def sample(self, rng: random.Random, src: Coord3) -> Coord3:
        return tuple(self.shape[d] - 1 - src[d] for d in range(3))


class FixedPermutation(TrafficPattern):
    """An arbitrary explicit node permutation."""

    def __init__(self, shape: Coord3, mapping: Dict[Coord3, Coord3], name: str = "permutation") -> None:
        super().__init__(shape)
        nodes = set(all_coords(shape))
        if set(mapping.keys()) != nodes or set(mapping.values()) != nodes:
            raise ValueError("mapping must be a permutation of all nodes")
        self.mapping = dict(mapping)
        self._name = name

    @property
    def name(self) -> str:
        return self._name

    def destinations(self, src: Coord3) -> List[Tuple[Coord3, float]]:
        return [(self.mapping[src], 1.0)]

    def sample(self, rng: random.Random, src: Coord3) -> Coord3:
        return self.mapping[src]


class Blend(TrafficPattern):
    """A mixture of patterns with given fractions (Section 4.2).

    :meth:`sample_with_pattern` additionally reports which component
    pattern the packet was drawn from; the batch generator stores it in
    the packet's ``pattern`` header field for the inverse-weighted
    arbiters.
    """

    def __init__(
        self, patterns: Sequence[TrafficPattern], fractions: Sequence[float]
    ) -> None:
        if len(patterns) != len(fractions) or not patterns:
            raise ValueError("patterns and fractions must align and be nonempty")
        if any(f < 0 for f in fractions) or abs(sum(fractions) - 1.0) > 1e-9:
            raise ValueError("fractions must be nonnegative and sum to 1")
        shapes = {p.shape for p in patterns}
        if len(shapes) != 1:
            raise ValueError("all blended patterns must share a shape")
        super().__init__(patterns[0].shape)
        self.patterns = list(patterns)
        self.fractions = list(fractions)
        self.node_symmetric = all(p.node_symmetric for p in self.patterns)

    @property
    def name(self) -> str:
        parts = ", ".join(
            f"{frac:.2f} {p.name}" for p, frac in zip(self.patterns, self.fractions)
        )
        return f"blend({parts})"

    def destinations(self, src: Coord3) -> List[Tuple[Coord3, float]]:
        merged: Dict[Coord3, float] = {}
        for pattern, fraction in zip(self.patterns, self.fractions):
            if fraction == 0:
                continue
            for dst, prob in pattern.destinations(src):
                merged[dst] = merged.get(dst, 0.0) + fraction * prob
        return list(merged.items())

    def sample_with_pattern(
        self, rng: random.Random, src: Coord3
    ) -> Tuple[Coord3, int]:
        """Draw (destination, component-pattern index)."""
        roll = rng.random()
        acc = 0.0
        for index, fraction in enumerate(self.fractions):
            acc += fraction
            if roll < acc:
                return self.patterns[index].sample(rng, src), index
        index = len(self.patterns) - 1
        return self.patterns[index].sample(rng, src), index

    def sample(self, rng: random.Random, src: Coord3) -> Coord3:
        return self.sample_with_pattern(rng, src)[0]


#: CLI/protocol names of the analytic patterns, in canonical order.
PATTERN_NAMES = ("uniform", "1hop", "2hop", "tornado", "reverse-tornado")


def pattern_factories(shape: Coord3):
    """Named zero-argument constructors for the analytic patterns.

    One registry shared by the CLI subcommands, trace replay, and the
    serve package's workload specs, so a pattern name written into a
    trace header or a protocol frame resolves identically everywhere.
    """
    return {
        "uniform": lambda: UniformRandom(shape),
        "1hop": lambda: NHopNeighbor(shape, 1),
        "2hop": lambda: NHopNeighbor(shape, 2),
        "tornado": lambda: Tornado(shape),
        "reverse-tornado": lambda: ReverseTornado(shape),
    }
