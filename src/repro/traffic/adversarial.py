"""Adversarial workload search: worst-case permutations (Section 2.4).

Section 2.4 evaluates routing algorithms by maximizing a channel's load
over the doubly substochastic demand polytope; the LP's optimum lies at
an extreme point, and for that polytope the extreme points are the
(sub)permutation matrices (:mod:`repro.core.worstcase_lp`). That is the
license for this module's search: to find a worst-case *workload* it is
sufficient to search node permutations.

The search is a seeded multi-restart hill climb: start from random
derangements, propose destination swaps between source pairs, and keep
any swap that does not lower the score. A candidate's score is its exact
expected peak torus-channel load per injected packet, from the analytic
load enumeration (:func:`repro.traffic.loads.compute_loads`) -- the same
oracle the inverse-weighted arbiter weights are programmed from. The
winner is emitted as a :class:`~repro.traffic.demand.DemandMatrix` (and
its :class:`~repro.traffic.patterns.FixedPermutation`), ready to drive
the demand-workload generators, sweeps, or the CLI.

For context the result also carries the Section 2.4 LP optimum for the
on-chip mesh (``lp_bound``) -- the worst-case *per-router* load the
paper's direction-order search minimizes. It is a different granularity
(mesh channels under unit per-direction demands vs. machine torus
channels under a node permutation), so it is reported, not compared.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Dict, Optional, Tuple

from repro.core.geometry import Coord3, all_coords
from repro.core.machine import Machine
from repro.core.routing import RouteComputer

from .demand import DemandMatrix
from .loads import compute_loads
from .patterns import FixedPermutation


@dataclasses.dataclass
class AdversarialResult:
    """Outcome of one worst-permutation search."""

    #: The worst node permutation found.
    mapping: Dict[Coord3, Coord3]
    #: The same permutation as a rate-1 demand matrix.
    demand: DemandMatrix
    #: ...and as a traffic pattern.
    pattern: FixedPermutation
    #: Peak torus-channel load per injected packet (the score maximized).
    score: float
    #: Candidate permutations scored during the search.
    evaluated: int
    #: Best score after each restart, in order.
    restart_scores: Tuple[float, ...]
    #: Section 2.4 LP worst-case mesh load (None if scipy is missing).
    lp_bound: Optional[float]


def score_permutation(
    machine: Machine,
    route_computer: RouteComputer,
    mapping: Dict[Coord3, Coord3],
    cores_per_chip: int = 1,
) -> float:
    """Exact peak torus-channel load of a node permutation, per packet
    injected by every active source."""
    pattern = FixedPermutation(machine.config.shape, mapping)
    table = compute_loads(machine, route_computer, pattern, cores_per_chip)
    return table.max_torus_load(machine)


def mesh_lp_bound() -> Optional[float]:
    """The Section 2.4 LP worst-case on-chip mesh load for the paper's
    direction order, or None when scipy is unavailable."""
    try:
        from repro.core.worstcase_lp import worst_case_lp
    except ImportError:  # pragma: no cover - scipy is normally present
        return None
    return worst_case_lp().worst_load


def _random_derangement(rng: random.Random, n: int) -> list:
    targets = list(range(n))
    while True:
        rng.shuffle(targets)
        if all(targets[i] != i for i in range(n)):
            return targets


def search_worst_permutation(
    machine: Machine,
    route_computer: RouteComputer,
    seed: int = 0,
    restarts: int = 3,
    steps: int = 60,
    cores_per_chip: int = 1,
    include_lp_bound: bool = True,
) -> AdversarialResult:
    """Seeded search for the permutation maximizing peak torus load.

    Deterministic for a given ``(seed, restarts, steps)``: every restart
    climbs from a fresh random derangement via pairwise destination
    swaps, keeping swaps that do not lower the exact analytic score.
    """
    nodes = list(all_coords(machine.config.shape))
    n = len(nodes)
    if n < 2:
        raise ValueError("adversarial search needs at least 2 nodes")
    rng = random.Random(seed)
    evaluated = 0
    best_targets = None
    best_score = -1.0
    restart_scores = []

    def score_of(targets) -> float:
        mapping = {nodes[i]: nodes[targets[i]] for i in range(n)}
        return score_permutation(
            machine, route_computer, mapping, cores_per_chip
        )

    for _restart in range(restarts):
        targets = _random_derangement(rng, n)
        current = score_of(targets)
        evaluated += 1
        for _step in range(steps):
            i = rng.randrange(n)
            j = rng.randrange(n)
            if i == j:
                continue
            targets[i], targets[j] = targets[j], targets[i]
            if targets[i] == i or targets[j] == j:
                # Keep the candidate a derangement: self-traffic is not a
                # workload the injection harness models.
                targets[i], targets[j] = targets[j], targets[i]
                continue
            candidate = score_of(targets)
            evaluated += 1
            if candidate >= current:
                current = candidate
            else:
                targets[i], targets[j] = targets[j], targets[i]
        restart_scores.append(current)
        if current > best_score:
            best_score = current
            best_targets = list(targets)

    mapping = {nodes[i]: nodes[best_targets[i]] for i in range(n)}
    name = f"demand-adversarial-s{seed}"
    return AdversarialResult(
        mapping=mapping,
        demand=DemandMatrix.from_mapping(
            machine.config.shape, mapping, rate=1.0, name=name
        ),
        pattern=FixedPermutation(machine.config.shape, mapping, name=name),
        score=best_score,
        evaluated=evaluated,
        restart_scores=tuple(restart_scores),
        lp_bound=mesh_lp_bound() if include_lp_bound else None,
    )
