"""Analytic channel and arbiter-input loads (Figure 5 semantics).

The *load* a traffic pattern places on a resource is the expected number
of packets per unit time that use the resource, summed over all sources
(Section 3.1). This module computes, by exact enumeration of the
oblivious route distribution (all dimension orders x slices x minimal
tie-breaks, each with its probability):

* the expected load on every directed channel, and
* the expected load on every (output channel, input port) arbitration
  point -- the ``gamma_{i,n}`` values from which the inverse-weighted
  arbiter's weights are computed.

Loads are normalized to "every active source endpoint injects exactly one
packet": multiplying by a per-source batch size B gives the expected
number of packets crossing each channel during a batch, which is how the
throughput experiments normalize completion time (a normalized throughput
of 1 means the most-loaded inter-node channel never idles).
"""

from __future__ import annotations

import dataclasses
from collections import defaultdict
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.machine import ChannelKind, Machine
from repro.core.routing import RouteComputer

from .patterns import TrafficPattern


def active_endpoints(machine: Machine, cores_per_chip: int) -> List[int]:
    """The endpoint component ids participating in an experiment.

    The first ``cores_per_chip`` endpoints of each chip are used; the
    default floorplan places consecutive endpoints on distinct routers, so
    this matches the paper's measurement setup ("one core per router
    participating") when ``cores_per_chip`` equals the router count.
    """
    if not 1 <= cores_per_chip <= machine.config.endpoints_per_chip:
        raise ValueError(
            f"cores_per_chip must be in [1, {machine.config.endpoints_per_chip}]"
        )
    ids = []
    from repro.core.geometry import all_coords

    for chip in all_coords(machine.config.shape):
        for index in range(cores_per_chip):
            ids.append(machine.ep_id[(chip, index)])
    return ids


@dataclasses.dataclass
class LoadTable:
    """Expected loads for one traffic pattern on one machine."""

    #: Expected packets per channel id, per one packet injected by every
    #: active source.
    channel_load: Dict[int, float]
    #: ``arbiter_load[output channel][input index]`` -- expected packets
    #: arriving at that arbitration point via that input port.
    arbiter_load: Dict[int, List[float]]
    #: ``vc_load[channel][vc]`` -- expected packets carried per virtual
    #: channel of each channel. This is the load seen by the SA1 (per-
    #: input VC selection) arbitration stage; dateline geography makes
    #: these loads uneven, so SA1 must be weighted too for global EoS.
    vc_load: Dict[int, List[float]]
    #: Number of active source endpoints the table was computed over.
    num_sources: int

    def max_load(self, machine: Machine, kind: Optional[ChannelKind] = None) -> float:
        """The largest channel load, optionally restricted to one kind."""
        best = 0.0
        for cid, load in self.channel_load.items():
            if kind is not None and machine.channels[cid].kind != kind:
                continue
            best = max(best, load)
        return best

    def max_torus_load(self, machine: Machine) -> float:
        """Peak inter-node channel load; the throughput normalizer."""
        return self.max_load(machine, ChannelKind.TORUS)


def _translate_component(machine: Machine, comp_id: int, offset) -> int:
    """The component id of ``comp_id`` shifted by a torus offset."""
    comp = machine.components[comp_id]
    shape = machine.config.shape
    chip = tuple((comp.chip[d] + offset[d]) % shape[d] for d in range(3))
    from repro.core.machine import ComponentKind

    if comp.kind == ComponentKind.ROUTER:
        return machine.router_id[(chip, comp.detail)]
    if comp.kind == ComponentKind.ENDPOINT:
        return machine.ep_id[(chip, comp.detail)]
    direction, slice_index = comp.detail
    return machine.ca_id[(chip, direction, slice_index)]


def _translate_channel(machine: Machine, channel_id: int, offset) -> int:
    """The channel id of ``channel_id`` shifted by a torus offset."""
    channel = machine.channels[channel_id]
    return machine.channel_between[
        (
            _translate_component(machine, channel.src, offset),
            _translate_component(machine, channel.dst, offset),
        )
    ]


def compute_loads(
    machine: Machine,
    route_computer: RouteComputer,
    pattern: TrafficPattern,
    cores_per_chip: int,
    dst_endpoint_mode: str = "same_index",
    use_symmetry: Optional[bool] = None,
) -> LoadTable:
    """Exact expected loads for ``pattern`` over the oblivious router.

    ``dst_endpoint_mode`` selects how node-level destinations map to
    endpoints: ``"same_index"`` (core i talks to core i, the default) or
    ``"uniform"`` (uniform over the active endpoints of the destination
    node).

    For translation-symmetric patterns (``pattern.node_symmetric``) on a
    translation-invariant topology (every dimension wraps -- the torus),
    only sources on one chip are enumerated and the resulting loads are
    translated over the machine -- exact, and an O(num_chips) speedup.
    Mesh and chiplet machines are not translation-invariant (an edge node
    differs from an interior one), so they always take the exhaustive
    path. ``use_symmetry`` overrides the automatic choice (tests use this
    to verify the fast and slow paths agree).
    """
    if pattern.shape != machine.config.shape:
        raise ValueError("pattern shape does not match the machine")
    if dst_endpoint_mode not in ("same_index", "uniform"):
        raise ValueError(f"unknown dst_endpoint_mode {dst_endpoint_mode!r}")
    if use_symmetry is None:
        use_symmetry = (
            pattern.node_symmetric and machine.topology.translation_invariant
        )
    elif use_symmetry and not machine.topology.translation_invariant:
        raise ValueError(
            f"use_symmetry requires a translation-invariant topology; "
            f"{machine.config.topology!r} is not"
        )

    sources = active_endpoints(machine, cores_per_chip)
    channel_load: Dict[int, float] = defaultdict(float)
    arbiter_load: Dict[int, Dict[int, float]] = defaultdict(lambda: defaultdict(float))
    vc_load: Dict[int, Dict[int, float]] = defaultdict(lambda: defaultdict(float))
    input_index = machine.input_index

    if use_symmetry:
        base_chip = (0, 0, 0)
        enumerated = [
            machine.ep_id[(base_chip, index)] for index in range(cores_per_chip)
        ]
    else:
        enumerated = sources

    for src_ep in enumerated:
        src_comp = machine.components[src_ep]
        src_chip = src_comp.chip
        src_index = src_comp.detail
        for dst_chip, node_prob in pattern.destinations(src_chip):
            if dst_endpoint_mode == "same_index":
                dst_choices = [(machine.ep_id[(dst_chip, src_index)], node_prob)]
            else:
                prob = node_prob / cores_per_chip
                dst_choices = [
                    (machine.ep_id[(dst_chip, e)], prob)
                    for e in range(cores_per_chip)
                ]
            for dst_ep, ep_prob in dst_choices:
                for choice, choice_prob in route_computer.all_choices(
                    src_chip, dst_chip
                ):
                    prob = ep_prob * choice_prob
                    route = route_computer.compute(src_ep, dst_ep, choice)
                    hops = route.hops
                    prev_channel = None
                    for channel_id, vc in hops:
                        channel_load[channel_id] += prob
                        vc_load[channel_id][vc] += prob
                        if prev_channel is not None:
                            arbiter_load[channel_id][
                                input_index[prev_channel]
                            ] += prob
                        prev_channel = channel_id

    if use_symmetry:
        # Translate the single-chip result over every nonzero offset.
        # Arbiter input indices are translation-invariant because every
        # chip's channels are created in the same per-chip order.
        from repro.core.geometry import all_coords

        base_channel_load = dict(channel_load)
        base_arbiter_load = {
            oc: dict(per_input) for oc, per_input in arbiter_load.items()
        }
        base_vc_load = {cid: dict(per_vc) for cid, per_vc in vc_load.items()}
        for offset in all_coords(machine.config.shape):
            if offset == (0, 0, 0):
                continue
            channel_map = {
                cid: _translate_channel(machine, cid, offset)
                for cid in base_channel_load
            }
            for cid, load in base_channel_load.items():
                channel_load[channel_map[cid]] += load
            for oc, per_input in base_arbiter_load.items():
                translated = channel_map[oc]
                target = arbiter_load[translated]
                for idx, load in per_input.items():
                    target[idx] += load
            for cid, per_vc in base_vc_load.items():
                translated = channel_map[cid]
                target = vc_load[translated]
                for vc, load in per_vc.items():
                    target[vc] += load

    dense_arbiter_load: Dict[int, List[float]] = {}
    for oc, per_input in arbiter_load.items():
        src_comp_id = machine.channels[oc].src
        num_inputs = len(machine.component_inputs[src_comp_id])
        row = [0.0] * num_inputs
        for idx, value in per_input.items():
            row[idx] = value
        dense_arbiter_load[oc] = row

    dense_vc_load: Dict[int, List[float]] = {}
    for cid, per_vc in vc_load.items():
        vcs = machine.vcs_for_channel(machine.channels[cid])
        row = [0.0] * vcs
        for vc, value in per_vc.items():
            row[vc] = value
        dense_vc_load[cid] = row

    return LoadTable(
        channel_load=dict(channel_load),
        arbiter_load=dense_arbiter_load,
        vc_load=dense_vc_load,
        num_sources=len(sources),
    )


def merge_arbiter_loads(
    machine: Machine, tables: Sequence[LoadTable]
) -> Dict[int, List[List[float]]]:
    """Stack per-pattern arbiter loads into per-site ``gamma[i][n]`` matrices.

    Returns a map from output channel id to a matrix whose row ``i`` is
    input ``i``'s load under each pattern -- the exact input of
    :func:`repro.arbiters.weights.compute_inverse_weights`.
    """
    sites = set()
    for table in tables:
        sites.update(table.arbiter_load.keys())
    merged: Dict[int, List[List[float]]] = {}
    for oc in sites:
        src_comp_id = machine.channels[oc].src
        num_inputs = len(machine.component_inputs[src_comp_id])
        matrix = [[0.0] * len(tables) for _ in range(num_inputs)]
        for n, table in enumerate(tables):
            row = table.arbiter_load.get(oc)
            if row is None:
                continue
            for i, value in enumerate(row):
                matrix[i][n] = value
        merged[oc] = matrix
    return merged


def merge_vc_loads(
    machine: Machine, tables: Sequence[LoadTable]
) -> Dict[int, List[List[float]]]:
    """Stack per-pattern VC loads into per-channel ``gamma[vc][n]`` matrices.

    The SA1 analogue of :func:`merge_arbiter_loads`: row ``vc`` of the
    matrix for a channel is that VC's load under each pattern.
    """
    channels = set()
    for table in tables:
        channels.update(table.vc_load.keys())
    merged: Dict[int, List[List[float]]] = {}
    for cid in channels:
        vcs = machine.vcs_for_channel(machine.channels[cid])
        matrix = [[0.0] * len(tables) for _ in range(vcs)]
        for n, table in enumerate(tables):
            row = table.vc_load.get(cid)
            if row is None:
                continue
            for vc, value in enumerate(row):
                matrix[vc][n] = value
        merged[cid] = matrix
    return merged


def ideal_batch_cycles(
    machine: Machine,
    table: LoadTable,
    packets_per_source: int,
    flits_per_packet: int = 1,
    bottleneck: str = "torus",
) -> float:
    """Cycles an ideal (perfect-switch) network needs for a batch.

    With ``bottleneck="torus"`` (the paper's normalization: "a throughput
    of 1 indicates full utilization of torus channels") the bound is the
    time the busiest torus channel needs to carry its share of the batch
    at its effective bandwidth. ``bottleneck="any"`` instead bounds over
    every channel (including injection/ejection links), which is the
    honest bound for small machine configurations whose torus is not the
    limiting resource.
    """
    if bottleneck == "torus":
        return (
            packets_per_source
            * table.max_torus_load(machine)
            * flits_per_packet
            * machine.config.torus_cycles_per_flit
        )
    if bottleneck != "any":
        raise ValueError(f"unknown bottleneck {bottleneck!r}")
    worst = 0.0
    for cid, load in table.channel_load.items():
        worst = max(worst, load * machine.channels[cid].cycles_per_flit)
    return packets_per_source * worst * flits_per_packet
