"""Reproduction of "Unifying on-chip and inter-node switching within the
Anton 2 network" (Towles, Grossman, Greskamp, Shaw; ISCA 2014).

The package models the complete unified network of the Anton 2
supercomputer -- a channel-sliced 3D torus of ASICs whose 4x4 on-chip
meshes double as the inter-node switches -- together with the paper's
three design contributions and the tooling to reproduce its evaluation:

* :mod:`repro.core` -- topology (chip floorplan, machine graph,
  packaging), oblivious inter-node routing, direction-order on-chip
  routing, the VC promotion deadlock-avoidance algorithm and its
  mechanical verification, multicast trees, and the worst-case routing
  search (enumeration + linear program).
* :mod:`repro.arbiters` -- the inverse-weighted arbiter (bit-faithful
  models of the paper's Figures 6-8) plus round-robin, age-based, and
  fixed-priority baselines, weight computation, and hardware cost models.
* :mod:`repro.sim` -- a cycle-level, packet-granularity simulator of the
  whole machine with virtual cut-through flow control and credits.
* :mod:`repro.traffic` -- the evaluated traffic patterns, batch workload
  generation, and exact analytic channel/arbiter load computation.
* :mod:`repro.models` -- latency, energy (activation-rate), and silicon
  area models reproducing Figures 11-13 and Tables 1-2.
* :mod:`repro.analysis` -- throughput/fairness experiment harnesses and
  report formatting.

Quick start::

    from repro import Machine, MachineConfig, RouteComputer, UniformRandom
    from repro.analysis import measure_batch

    machine = Machine(MachineConfig(shape=(4, 4, 4), endpoints_per_chip=4))
    routes = RouteComputer(machine)
    pattern = UniformRandom(machine.config.shape)
    point = measure_batch(machine, routes, pattern, batch_size=64,
                          cores_per_chip=4, arbitration="iw")
    print(point.normalized_throughput)
"""

from .arbiters import (
    AgeBasedArbiter,
    InverseWeightedArbiter,
    RoundRobinArbiter,
    WeightTable,
    compute_inverse_weights,
)
from .core import (
    ANTON_DIRECTION_ORDER,
    Machine,
    MachineConfig,
    Packaging,
    Route,
    RouteChoice,
    RouteComputer,
    default_floorplan,
    search_direction_orders,
)
from .core import params
from .models import AreaModel, EnergyModel, LatencyModel
from .sim import Engine, Packet, SimStats, run_batch, run_single_packet
from .traffic import (
    BatchSpec,
    Blend,
    NHopNeighbor,
    ReverseTornado,
    Tornado,
    UniformRandom,
    compute_loads,
)

__version__ = "1.0.0"

__all__ = [
    "ANTON_DIRECTION_ORDER",
    "AgeBasedArbiter",
    "AreaModel",
    "BatchSpec",
    "Blend",
    "EnergyModel",
    "Engine",
    "InverseWeightedArbiter",
    "LatencyModel",
    "Machine",
    "MachineConfig",
    "NHopNeighbor",
    "Packaging",
    "Packet",
    "ReverseTornado",
    "RoundRobinArbiter",
    "Route",
    "RouteChoice",
    "RouteComputer",
    "RoundRobinArbiter",
    "SimStats",
    "Tornado",
    "UniformRandom",
    "WeightTable",
    "compute_inverse_weights",
    "compute_loads",
    "default_floorplan",
    "params",
    "run_batch",
    "run_single_packet",
    "search_direction_orders",
    "__version__",
]
