"""Bit-faithful model of the inverse-weighted arbiter's accumulators.

This module mirrors, operation for operation, the SystemVerilog
``accumulator_update`` module of Figure 6. Each arbiter input ``i`` owns an
``M+1``-bit accumulator ``A_i`` tracking a scaled service history

    A_i(t) = sum_n s_{i,n}(t) / gamma_{i,n}            (paper eq. 3)

approximated with integer *inverse weights* ``m_{i,n} = nint(beta /
gamma_{i,n})`` (Section 3.3). The accumulator values are stored relative to
a sliding window of ``2^(M+1)`` values:

* the most significant bit of each accumulator, inverted, is the input's
  **priority bit** (values in the lower half of the window are high
  priority);
* when a *low-priority* input is granted (meaning no high-priority input
  was requesting), the window slides: ``2^M`` is subtracted from every
  accumulator, clamping underflow at zero;
* a granted input additionally adds its packet's inverse weight.
"""

from __future__ import annotations

from typing import List, Optional, Sequence


class AccumulatorBank:
    """The accumulators and update logic for one k-input arbiter.

    Parameters
    ----------
    inverse_weights:
        ``inverse_weights[i][n]`` is the integer inverse weight
        ``m_{i,n}`` for arbiter input ``i`` and traffic pattern ``n``.
        All inputs must list the same number of patterns.
    weight_bits:
        ``M``, the number of bits used to store each inverse weight. All
        weights must satisfy ``0 <= m < 2^M``; accumulators occupy
        ``M + 1`` bits.
    """

    def __init__(self, inverse_weights: Sequence[Sequence[int]], weight_bits: int) -> None:
        if weight_bits < 1:
            raise ValueError(f"weight_bits must be positive, got {weight_bits}")
        if not inverse_weights:
            raise ValueError("at least one input is required")
        num_patterns = len(inverse_weights[0])
        if num_patterns < 1:
            raise ValueError("at least one traffic pattern is required")
        limit = 1 << weight_bits
        for i, row in enumerate(inverse_weights):
            if len(row) != num_patterns:
                raise ValueError(
                    f"input {i} lists {len(row)} patterns, expected {num_patterns}"
                )
            for n, m in enumerate(row):
                if not 0 <= m < limit:
                    raise ValueError(
                        f"inverse weight m[{i}][{n}] = {m} does not fit in "
                        f"{weight_bits} bits"
                    )
        self.weight_bits = weight_bits
        self.num_inputs = len(inverse_weights)
        self.num_patterns = num_patterns
        self._weights = [list(row) for row in inverse_weights]
        #: Accumulator values; each always in ``[0, 2^(M+1))``.
        self.accumulators: List[int] = [0] * self.num_inputs

    @property
    def window(self) -> int:
        """The window half-size ``2^M`` used for the sliding-window shift."""
        return 1 << self.weight_bits

    def priority(self, index: int) -> bool:
        """Priority bit of an input: True (high) when MSB of accumulator is 0."""
        return not (self.accumulators[index] >> self.weight_bits) & 1

    def priorities(self) -> List[bool]:
        """Priority bits for all inputs (the ``pri`` output of Figure 6)."""
        return [self.priority(i) for i in range(self.num_inputs)]

    def update(self, granted: Optional[int], pattern: int) -> None:
        """Apply one cycle of the Figure 6 update rule.

        ``granted`` is the granted input index (or None for an idle cycle,
        which leaves all state unchanged); ``pattern`` is the granted
        packet's traffic-pattern identifier.
        """
        if granted is None:
            return
        if not 0 <= granted < self.num_inputs:
            raise ValueError(f"granted index {granted} out of range")
        if not 0 <= pattern < self.num_patterns:
            raise ValueError(f"pattern {pattern} out of range")
        window = self.window
        msb_mask = window - 1
        accumulators = self.accumulators
        # low_grant = |(grant & ~pri): the granted input had low priority,
        # so the window slides for every input.
        if accumulators[granted] >= window:
            for i in range(self.num_inputs):
                value = accumulators[i]
                if i == granted:
                    accumulators[i] = (value & msb_mask) + self._weights[i][pattern]
                elif value < window:
                    # Window shift underflow: high-priority accumulators
                    # (MSB already 0) clamp at zero.
                    accumulators[i] = 0
                else:
                    accumulators[i] = value & msb_mask
        else:
            accumulators[granted] += self._weights[granted][pattern]

    def check_invariant(self) -> None:
        """Raise if any accumulator has left its ``[0, 2^(M+1))`` range."""
        bound = 2 * self.window
        for i, value in enumerate(self.accumulators):
            if not 0 <= value < bound:
                raise AssertionError(
                    f"accumulator {i} = {value} outside [0, {bound})"
                )

    def inverse_weight(self, index: int, pattern: int) -> int:
        """The stored inverse weight ``m_{index,pattern}``."""
        return self._weights[index][pattern]
