"""The inverse-weighted arbiter (Section 3).

The arbiter grants each input in proportion to the input's contribution to
the load on the arbitrated resource, achieving equality of service (EoS)
beyond saturation. It combines the two bit-faithful hardware models:

* the :class:`~repro.arbiters.accumulator.AccumulatorBank` of Figure 6,
  whose priority bits classify each input as high or low priority; and
* the two-level prioritized round-robin arbiter of Figure 8
  (:func:`~repro.arbiters.priority_arb.priority_arb_bits`).

Each granted packet's traffic-pattern header field selects which inverse
weight is added to the granted input's accumulator, which is what lets a
single arbiter maintain EoS over any *blend* of the pre-computed patterns
(Section 3.2).
"""

from __future__ import annotations

from typing import Optional, Sequence

from .accumulator import AccumulatorBank
from .base import Arbiter, Request
from .priority_arb import grant_index, priority_arb_bits, thermometer

#: Number of hardware priority levels used by the inverse-weighted arbiter.
NUM_PRIORITY_LEVELS = 2


class InverseWeightedArbiter(Arbiter):
    """k-input inverse-weighted arbiter with two priority levels.

    Parameters
    ----------
    inverse_weights:
        ``inverse_weights[i][n]``: integer inverse weight for input ``i``
        and traffic pattern ``n`` (see
        :func:`repro.arbiters.weights.compute_inverse_weights`).
    weight_bits:
        ``M``, the width in bits of each inverse weight.
    bit_exact:
        When True, grants are computed with the literal Figure 8 bit-level
        model (:func:`~repro.arbiters.priority_arb.priority_arb_bits`).
        The default fast path computes the identical grant directly (the
        equivalence is property-tested in
        ``tests/properties/test_arbiter_equivalence.py``).
    """

    def __init__(
        self,
        inverse_weights: Sequence[Sequence[int]],
        weight_bits: int,
        bit_exact: bool = False,
    ) -> None:
        super().__init__(len(inverse_weights))
        self.bank = AccumulatorBank(inverse_weights, weight_bits)
        self._pointer = 0
        self.bit_exact = bit_exact

    def _grant_fast(self, requests: Sequence[Optional[Request]]) -> Optional[int]:
        """Behavioural grant: the requesting input with the largest
        (effective priority level, index) key, where the level combines
        the accumulator priority bit and the round-robin boost."""
        window = self.bank.window
        accumulators = self.bank.accumulators
        pointer = self._pointer
        num_inputs = self.num_inputs
        best_key = -1
        granted: Optional[int] = None
        for i in range(num_inputs):
            if requests[i] is None:
                continue
            level = (1 if accumulators[i] < window else 0) + (1 if i < pointer else 0)
            key = level * num_inputs + i
            if key > best_key:
                best_key = key
                granted = i
        return granted

    def _grant_bits(self, requests: Sequence[Optional[Request]]) -> Optional[int]:
        req_vector = 0
        for i, request in enumerate(requests):
            if request is not None:
                req_vector |= 1 << i
        if req_vector == 0:
            return None
        # Accumulators in the lower half of the window are high priority
        # (level 1); others low (level 0).
        pri = [1 if high else 0 for high in self.bank.priorities()]
        rr_therm = thermometer(self._pointer, self.num_inputs)
        grant_vector = priority_arb_bits(
            req_vector, pri, rr_therm, self.num_inputs, NUM_PRIORITY_LEVELS
        )
        return grant_index(grant_vector)

    def peek(self, requests: Sequence[Optional[Request]]) -> Optional[int]:
        if self.bit_exact:
            return self._grant_bits(requests)
        return self._grant_fast(requests)

    def commit(self, index: int, request: Request) -> None:
        # A packet may be marked with a pattern the arbiter has no weights
        # for (e.g. single-pattern weights under blended traffic, the
        # "Forward"/"Reverse" curves of Figure 10). The hardware charges
        # such packets against the weights it does have.
        pattern = min(request.pattern, self.bank.num_patterns - 1)
        self.bank.update(index, pattern)
        self._pointer = index
        self.record_grant(index)

    def state(self) -> dict:
        out = super().state()
        out["pointer"] = self._pointer
        out["bit_exact"] = self.bit_exact
        # The full weight configuration rides along so a checkpoint can
        # rebuild the arbiter without re-deriving weight tables from the
        # original traffic patterns.
        out["weight_bits"] = self.bank.weight_bits
        out["weights"] = [list(row) for row in self.bank._weights]
        out["accumulators"] = list(self.bank.accumulators)
        return out

    def restore(self, state: dict) -> None:
        super().restore(state)
        self._pointer = state["pointer"]
        self.bit_exact = bool(state["bit_exact"])
        accumulators = list(state["accumulators"])
        if len(accumulators) != self.bank.num_inputs:
            raise ValueError(
                f"accumulator state has {len(accumulators)} inputs, "
                f"expected {self.bank.num_inputs}"
            )
        self.bank.accumulators = accumulators

    @property
    def accumulators(self) -> Sequence[int]:
        """Current accumulator values (for inspection and tests)."""
        return tuple(self.bank.accumulators)
