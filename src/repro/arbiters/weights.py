"""Computing inverse weights from per-input loads (Section 3.3).

Given the load ``gamma_{i,n}`` placed on arbiter input ``i`` by traffic
pattern ``n`` (computed offline by :mod:`repro.traffic.loads`), the
hardware stores integer inverse weights

    m_{i,n} = nint(beta / gamma_{i,n})

where ``beta`` is a per-arbiter positive scale factor and ``nint`` is the
nearest-integer function. The number of weight bits ``M`` is chosen so
that every ``m_{i,n} < 2^M``.

Inputs that carry no traffic of a pattern (``gamma = 0``) are assigned the
maximum representable weight: any packet they do send is charged maximally,
so unexpected traffic cannot starve modeled traffic.
"""

from __future__ import annotations

import dataclasses
from typing import List, Sequence


def nint(value: float) -> int:
    """Nearest-integer function, rounding halves away from zero."""
    import math

    return int(math.floor(value + 0.5)) if value >= 0 else -int(
        math.floor(-value + 0.5)
    )


@dataclasses.dataclass(frozen=True)
class WeightTable:
    """The programmed state of one inverse-weighted arbiter.

    Attributes
    ----------
    inverse_weights:
        ``inverse_weights[i][n]`` for input ``i``, pattern ``n``.
    weight_bits:
        ``M``, bits per weight; all weights are < ``2**weight_bits``.
    beta:
        The scale factor actually used.
    """

    inverse_weights: Sequence[Sequence[int]]
    weight_bits: int
    beta: float

    @property
    def num_inputs(self) -> int:
        return len(self.inverse_weights)

    @property
    def num_patterns(self) -> int:
        return len(self.inverse_weights[0]) if self.inverse_weights else 0


def choose_beta(
    loads: Sequence[Sequence[float]],
    weight_bits: int,
    significance: float = 0.02,
) -> float:
    """Pick ``beta`` so the significant load ratios fit in ``M`` bits.

    The smallest load anchored determines the largest weight:
    ``beta = (2^M - 1 - 0.5) * gamma_anchor`` keeps
    ``nint(beta / gamma) <= 2^M - 1`` for every load at or above the
    anchor. Anchoring on the *smallest significant* load (at least
    ``significance`` of the largest) rather than the absolute minimum
    matters: a negligible stray input would otherwise compress all the
    meaningful weights into a few codes, destroying the grant-ratio
    resolution the arbiter exists to provide. Loads below the anchor
    simply saturate at the maximum weight, which is the correct policy
    for near-idle inputs. Returns 1.0 if all loads are zero.
    """
    if weight_bits < 1:
        raise ValueError(f"weight_bits must be positive, got {weight_bits}")
    nonzero = [g for row in loads for g in row if g > 0]
    if not nonzero:
        return 1.0
    threshold = significance * max(nonzero)
    significant = [g for g in nonzero if g >= threshold]
    max_weight = (1 << weight_bits) - 1
    return (max_weight - 0.5) * min(significant)


def compute_inverse_weights(
    loads: Sequence[Sequence[float]],
    weight_bits: int = 5,
    beta: float = None,
) -> WeightTable:
    """Quantize per-input, per-pattern loads into hardware inverse weights.

    Parameters
    ----------
    loads:
        ``loads[i][n]`` = ``gamma_{i,n}``, the expected packets per unit
        time arriving at input ``i`` under pattern ``n``. Negative loads
        are invalid.
    weight_bits:
        ``M``. The paper's example hardware uses ``M = 5`` (Figure 6).
    beta:
        Scale factor; if omitted, :func:`choose_beta` picks the largest
        value that fits.
    """
    if not loads:
        raise ValueError("at least one input is required")
    num_patterns = len(loads[0])
    for i, row in enumerate(loads):
        if len(row) != num_patterns:
            raise ValueError(
                f"input {i} lists {len(row)} patterns, expected {num_patterns}"
            )
        for n, gamma in enumerate(row):
            if gamma < 0:
                raise ValueError(f"load gamma[{i}][{n}] = {gamma} is negative")
    if beta is None:
        beta = choose_beta(loads, weight_bits)
    if beta <= 0:
        raise ValueError(f"beta must be positive, got {beta}")
    max_weight = (1 << weight_bits) - 1
    table: List[List[int]] = []
    for row in loads:
        weights = []
        for gamma in row:
            if gamma <= 0:
                weights.append(max_weight)
            else:
                weights.append(min(max_weight, max(1, nint(beta / gamma))))
        table.append(weights)
    return WeightTable(
        inverse_weights=tuple(tuple(w) for w in table),
        weight_bits=weight_bits,
        beta=beta,
    )


def uniform_weight_table(num_inputs: int, num_patterns: int = 1, weight_bits: int = 5) -> WeightTable:
    """A degenerate table with equal weights (behaves like round-robin)."""
    loads = [[1.0] * num_patterns for _ in range(num_inputs)]
    return compute_inverse_weights(loads, weight_bits=weight_bits)
