"""Hardware-cost model for prioritized round-robin arbiters (Section 3.4).

A conventional P-priority round-robin arbiter [Gupta & McKeown 1999] builds
one un-prioritized round-robin arbiter per priority level and combines the
results; each round-robin arbiter is two fixed-priority arbiters (the
requests above the pointer and those below), for ``2P`` fixed-priority
arbiters total. The Anton 2 optimization (Figure 7) observes that, of the
``2P`` split request vectors, adjacent middle pairs are mutually exclusive
and can be merged, leaving ``P + 1`` fixed-priority arbiters.

This module quantifies that claim and provides a simple gate-count model
used by the area model's "Arbiters" category.
"""

from __future__ import annotations

import dataclasses
import math


def fixed_priority_arbiters_conventional(num_levels: int) -> int:
    """Fixed-priority arbiters in the conventional design: ``2P``."""
    if num_levels < 1:
        raise ValueError("num_levels must be positive")
    return 2 * num_levels


def fixed_priority_arbiters_optimized(num_levels: int) -> int:
    """Fixed-priority arbiters in the optimized design: ``P + 1``."""
    if num_levels < 1:
        raise ValueError("num_levels must be positive")
    return num_levels + 1


def reduction_fraction(num_levels: int) -> float:
    """Fractional saving of the optimization (approaches 1/2 for large P).

    For the inverse-weighted arbiter's ``P = 2`` the saving is
    ``(4 - 3) / 4 = 25%`` of the fixed-priority arbiters.
    """
    conventional = fixed_priority_arbiters_conventional(num_levels)
    optimized = fixed_priority_arbiters_optimized(num_levels)
    return (conventional - optimized) / conventional


@dataclasses.dataclass(frozen=True)
class ArbiterCost:
    """Gate-count estimate for one k-input arbiter instance.

    Units are arbitrary "gate equivalents"; the model is used for relative
    comparisons (optimized vs. conventional, and the Table 2 area split of
    roughly 3/4 accumulator storage + update vs. 1/4 priority arbiter).
    """

    num_inputs: int
    num_levels: int
    weight_bits: int
    num_patterns: int

    #: Gate equivalents per bit of storage (flop + mux).
    GATES_PER_STORAGE_BIT = 8.0
    #: Gate equivalents per adder bit.
    GATES_PER_ADDER_BIT = 6.0
    #: Gate equivalents per prefix-network node, including the grant
    #: kill/enable logic and wiring overhead attributed per node.
    GATES_PER_PREFIX_NODE = 5.4

    @property
    def accumulator_gates(self) -> float:
        """Storage for weights and accumulators plus the update adders.

        Per input: ``num_patterns`` M-bit weights, one (M+1)-bit
        accumulator, and one (M+1)-bit adder (Figure 6 uses a single adder
        per accumulator).
        """
        m = self.weight_bits
        per_input = (
            self.num_patterns * m * self.GATES_PER_STORAGE_BIT
            + (m + 1) * self.GATES_PER_STORAGE_BIT
            + (m + 1) * self.GATES_PER_ADDER_BIT
        )
        return self.num_inputs * per_input

    def _prefix_gates(self, width: int, stages: float = None) -> float:
        """Gates in a parallel-prefix OR network over ``width`` bits."""
        if width <= 1:
            return 0.0
        if stages is None:
            stages = math.ceil(math.log2(width))
        return width * stages * self.GATES_PER_PREFIX_NODE

    @property
    def priority_arbiter_gates(self) -> float:
        """Gates in the optimized Figure 8 arbiter.

        ``P + 1`` fixed-priority arbiters are realized as one prefix
        network over the unrolled ``(P + 1) * k`` request vector, plus the
        unroll and fold logic. Crucially, the thermometer encoding of the
        unrolled requests bounds the prefix depth at ``ceil(log2(k - 1))``
        stages (the Figure 8 caption) -- far shallower than a full prefix
        over the unrolled width.
        """
        k = self.num_inputs
        unrolled = (self.num_levels + 1) * k
        stages = math.ceil(math.log2(k - 1)) if k > 2 else 1
        unroll_logic = self.num_levels * k * 2.0  # compare + AND per bit
        fold_logic = math.ceil(math.log2(self.num_levels + 1)) * k * 1.0
        return self._prefix_gates(unrolled, stages) + unroll_logic + fold_logic

    @property
    def conventional_priority_arbiter_gates(self) -> float:
        """Gates in the conventional 2P-fixed-priority-arbiter design.

        Each of the ``2P`` split request vectors needs masking by the
        round-robin pointer and the priority level (the same per-bit work
        the optimized design's unroll does), its own fixed-priority
        prefix network, and a combine stage across the ``2P`` grant
        vectors.
        """
        k = self.num_inputs
        per_arbiter = self._prefix_gates(k)
        split_logic = 2 * self.num_levels * k * 2.0
        combine = (2 * self.num_levels - 1) * k * 1.0
        return (
            fixed_priority_arbiters_conventional(self.num_levels) * per_arbiter
            + split_logic
            + combine
        )

    @property
    def total_gates(self) -> float:
        return self.accumulator_gates + self.priority_arbiter_gates

    @property
    def accumulator_fraction(self) -> float:
        """Fraction of arbiter area in accumulators + weights + update.

        The paper reports approximately three-quarters (Section 4.4).
        """
        return self.accumulator_gates / self.total_gates


def anton2_router_arbiter_cost() -> ArbiterCost:
    """Cost of one router output arbiter with Anton 2's parameters.

    Routers have six ports, so each output arbiter sees five other inputs
    plus the local injection path; we model k = 6. The hardware supports
    N = 2 traffic patterns, P = 2 priority levels.
    """
    return ArbiterCost(num_inputs=6, num_levels=2, weight_bits=5, num_patterns=2)
