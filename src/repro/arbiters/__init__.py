"""Arbitration policies for the Anton 2 network reproduction.

The package provides the paper's inverse-weighted arbiter (Section 3) as a
pair of bit-faithful hardware models plus a packaged policy object, along
with the baselines the paper measures against (round-robin) or cites
(age-based, fixed-priority).
"""

from .accumulator import AccumulatorBank
from .age_based import AgeBasedArbiter
from .base import Arbiter, ArbiterFactory, SimpleRequest
from .cost import (
    ArbiterCost,
    anton2_router_arbiter_cost,
    fixed_priority_arbiters_conventional,
    fixed_priority_arbiters_optimized,
    reduction_fraction,
)
from .inverse_weighted import InverseWeightedArbiter
from .priority_arb import (
    behavioral_grant,
    grant_index,
    priority_arb_bits,
    thermometer,
)
from .round_robin import FixedPriorityArbiter, RoundRobinArbiter
from .weights import (
    WeightTable,
    choose_beta,
    compute_inverse_weights,
    uniform_weight_table,
)

__all__ = [
    "AccumulatorBank",
    "AgeBasedArbiter",
    "Arbiter",
    "ArbiterCost",
    "ArbiterFactory",
    "FixedPriorityArbiter",
    "InverseWeightedArbiter",
    "RoundRobinArbiter",
    "SimpleRequest",
    "WeightTable",
    "anton2_router_arbiter_cost",
    "behavioral_grant",
    "choose_beta",
    "compute_inverse_weights",
    "fixed_priority_arbiters_conventional",
    "fixed_priority_arbiters_optimized",
    "grant_index",
    "priority_arb_bits",
    "reduction_fraction",
    "thermometer",
    "uniform_weight_table",
]
