"""Locally fair round-robin arbiter.

This is the baseline arbiter of Section 4.1's measurements ("round-robin
arbitration"): each requesting input is granted in cyclic order, giving
every *input* (not every *source*) an equal share of the output. Chained
through multiple arbitration points, this local fairness composes into
global unfairness -- the effect Figure 9 quantifies.

The round-robin order is descending from the pointer, to match the
hardware arbiter of Figure 8 (whose thermometer-encoded pointer prefers
the highest index below the pointer, wrapping to the highest index
overall). Any consistent cyclic order gives identical fairness behaviour;
matching the hardware makes the behavioural and bit-level models directly
comparable in tests.
"""

from __future__ import annotations

from typing import Optional, Sequence

from .base import Arbiter, Request


def rr_order(pointer: int, num_inputs: int) -> list:
    """The descending round-robin preference order for a pointer value.

    ``pointer`` is the index one above the most-preferred input:
    preference is ``pointer-1, pointer-2, ..., 0, k-1, ..., pointer``.
    """
    return [(pointer - 1 - i) % num_inputs for i in range(num_inputs)]


class RoundRobinArbiter(Arbiter):
    """Single-priority round-robin arbiter."""

    def __init__(self, num_inputs: int) -> None:
        super().__init__(num_inputs)
        self._pointer = 0

    def peek(self, requests: Sequence[Optional[Request]]) -> Optional[int]:
        # Allocation-free rr_order(): peek runs in the engine's SA1/SA2
        # inner loop, so the preference order is enumerated in place
        # instead of materializing the list each call.
        num_inputs = self.num_inputs
        pointer = self._pointer
        for offset in range(num_inputs):
            index = (pointer - 1 - offset) % num_inputs
            if requests[index] is not None:
                return index
        return None

    def commit(self, index: int, request: Request) -> None:
        self._pointer = index
        # record_grant(), inlined: commit runs once per SA1 and once per
        # SA2 grant, every departure.
        self.grants[index] += 1

    def state(self) -> dict:
        out = super().state()
        out["pointer"] = self._pointer
        return out

    def restore(self, state: dict) -> None:
        super().restore(state)
        self._pointer = state["pointer"]


class FixedPriorityArbiter(Arbiter):
    """Fixed-priority arbiter: the highest index always wins.

    This matches the most-significant-bit-first rule used inside the
    hardware arbiter of Figure 8. It is intentionally unfair and exists as
    a building block and as a worst-case baseline in fairness tests.
    """

    def peek(self, requests: Sequence[Optional[Request]]) -> Optional[int]:
        for index in range(self.num_inputs - 1, -1, -1):
            if requests[index] is not None:
                return index
        return None

    def commit(self, index: int, request: Request) -> None:
        self.record_grant(index)
