"""Arbiter interface shared by all arbitration policies.

An arbiter guards a single contended resource (in the Anton 2 network, an
output channel of a router or adapter). Each cycle the simulator presents
the arbiter with one optional *request* per input; the arbiter selects at
most one input to grant and updates its internal state.

A request carries enough information for every policy implemented here:

* ``pattern`` -- the traffic-pattern identifier from the packet header,
  used by the inverse-weighted arbiter (Section 3.3);
* ``inject_cycle`` -- the packet's injection timestamp, used by the
  age-based baseline arbiter [Abts & Weisser 2007].

Packets produced by :mod:`repro.sim.packet` satisfy this protocol directly.
"""

from __future__ import annotations

import abc
import dataclasses
from typing import Optional, Protocol, Sequence, runtime_checkable


@runtime_checkable
class Request(Protocol):
    """Structural type of an arbitration request."""

    pattern: int
    inject_cycle: int


@dataclasses.dataclass
class SimpleRequest:
    """A minimal concrete request, convenient for tests and examples."""

    pattern: int = 0
    inject_cycle: int = 0


class Arbiter(abc.ABC):
    """Abstract base class for k-input, single-grant arbiters.

    The interface is split into a pure :meth:`peek` (compute the winner)
    and a state-updating :meth:`commit`. The split exists because the
    router pipeline arbitrates twice per hop: the SA1 winner of an input
    port only *actually* departs if it also wins SA2 at the output, and
    only real departures may update service history. :meth:`arbitrate`
    composes the two for single-stage use.
    """

    def __init__(self, num_inputs: int) -> None:
        if num_inputs < 1:
            raise ValueError(f"arbiter needs at least one input, got {num_inputs}")
        self.num_inputs = num_inputs
        #: Total grants issued, per input (service history; used by fairness
        #: metrics and by tests).
        self.grants = [0] * num_inputs

    @abc.abstractmethod
    def peek(self, requests: Sequence[Optional[Request]]) -> Optional[int]:
        """The input this arbiter would grant, without changing state.

        ``requests[i]`` is ``None`` when input ``i`` is not requesting.
        Returns the winning input index, or ``None`` if nothing requests.
        """

    @abc.abstractmethod
    def commit(self, index: int, request: Request) -> None:
        """Apply the state updates for an actual grant of ``index``."""

    def arbitrate(self, requests: Sequence[Optional[Request]]) -> Optional[int]:
        """Grant at most one requesting input and update arbiter state."""
        self._validate(requests)
        index = self.peek(requests)
        if index is not None:
            request = requests[index]
            assert request is not None
            self.commit(index, request)
        return index

    def _validate(self, requests: Sequence[Optional[Request]]) -> None:
        if len(requests) != self.num_inputs:
            raise ValueError(
                f"expected {self.num_inputs} request slots, got {len(requests)}"
            )

    def record_grant(self, index: int) -> None:
        """Update the service history after a grant."""
        self.grants[index] += 1

    def reset_history(self) -> None:
        """Clear the service history without touching policy state."""
        self.grants = [0] * self.num_inputs

    # --- checkpoint support -----------------------------------------------------

    def state(self) -> dict:
        """JSON-safe snapshot of all mutable arbiter state.

        Subclasses with policy state (pointers, accumulators) extend the
        dict; :meth:`restore` is the exact inverse. The contract -- pinned
        by the checkpoint round-trip tests -- is observational: an arbiter
        restored from ``state()`` grants identically to the original on
        every future request sequence.
        """
        return {"grants": list(self.grants)}

    def restore(self, state: dict) -> None:
        """Reinstate a :meth:`state` snapshot (same-shape arbiter only)."""
        grants = list(state["grants"])
        if len(grants) != self.num_inputs:
            raise ValueError(
                f"arbiter state has {len(grants)} inputs, expected "
                f"{self.num_inputs}"
            )
        self.grants = grants


class ArbiterFactory(Protocol):
    """Callable that builds an arbiter for an output port.

    The simulator invokes the factory with the number of inputs and an
    opaque *site* key identifying the arbitration point (used by the
    inverse-weighted factory to look up per-site loads).
    """

    def __call__(self, num_inputs: int, site: object) -> Arbiter: ...
