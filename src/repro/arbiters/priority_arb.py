"""Bit-faithful model of the optimized prioritized arbiter of Figure 8.

The hardware arbiter selects among ``k`` requests carrying ``P`` priority
levels, breaking ties with a thermometer-encoded round-robin pointer. Its
key optimization (Figure 7) is that, after the round-robin split, the
"high-priority requests below the pointer" and "low-priority requests at or
above the pointer" vectors are mutually exclusive in the fixed-priority
order, so they can be combined -- reducing the number of fixed-priority
arbiters from ``2P`` to ``P + 1``.

Two implementations are provided:

* :func:`priority_arb_bits` -- a literal translation of the SystemVerilog
  of Figure 8, operating on Python integers as bit vectors, including the
  request unrolling, the Kogge-Stone-style parallel-prefix OR, and the
  grant fold;
* :func:`behavioral_grant` -- a straightforward behavioural reference
  (grant the requesting input with the highest ``(effective level, index)``
  key), used to cross-check the bit-level model in property tests.

Conventions (matching the Verilog):

* ``req`` is a ``k``-bit vector; bit ``i`` set means input ``i`` requests.
* ``pri[i]`` is input ``i``'s priority level in ``[0, P - 1]``; for the
  inverse-weighted arbiter ``P = 2`` and the level is the accumulator's
  priority bit.
* ``rr_therm`` is thermometer encoded: if bit ``i`` is set then bit
  ``i - 1`` is also set. Bits ``0 .. s-1`` set (pointer value ``s``) means
  inputs below ``s`` get the round-robin boost, so the preference order is
  ``s-1, s-2, ..., 0, k-1, ..., s`` (descending from the pointer).
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence


def clog2(value: int) -> int:
    """SystemVerilog ``$clog2``: ceil(log2(value)), with ``$clog2(1) = 0``."""
    if value < 1:
        return 0
    return math.ceil(math.log2(value))


def thermometer(pointer: int, num_inputs: int) -> int:
    """Thermometer-encode a round-robin pointer: bits ``0..pointer-1`` set."""
    if not 0 <= pointer <= num_inputs:
        raise ValueError(f"pointer {pointer} out of range [0, {num_inputs}]")
    return (1 << pointer) - 1


def is_thermometer(value: int, num_inputs: int) -> bool:
    """Whether ``value`` is a valid thermometer code of ``num_inputs`` bits."""
    if value >> num_inputs:
        return False
    return value & (value + 1) == 0


def unroll_requests(
    req: int, pri: Sequence[int], rr_therm: int, num_inputs: int, num_levels: int
) -> List[int]:
    """Compute ``req_unroll`` exactly as Figure 8 does.

    ``req_unroll[0] = req`` and, for ``p >= 1``,
    ``req_unroll[p][i] = req[i] & ({pri[i], rr_therm[i]} >= 2p - 1)``.
    The concatenation ``{pri[i], rr_therm[i]}`` has value
    ``2 * pri[i] + rr_therm[i]``.
    """
    unrolled = [req]
    for p in range(1, num_levels + 1):
        vec = 0
        for i in range(num_inputs):
            if not (req >> i) & 1:
                continue
            combined = 2 * pri[i] + ((rr_therm >> i) & 1)
            if combined >= 2 * p - 1:
                vec |= 1 << i
        unrolled.append(vec)
    return unrolled


def priority_arb_bits(
    req: int, pri: Sequence[int], rr_therm: int, num_inputs: int, num_levels: int
) -> int:
    """The grant vector computed by the Figure 8 hardware.

    Returns a one-hot (or zero) ``num_inputs``-bit grant vector.
    """
    if num_inputs < 1:
        raise ValueError("num_inputs must be positive")
    if num_levels < 1:
        raise ValueError("num_levels must be positive")
    if len(pri) != num_inputs:
        raise ValueError(f"expected {num_inputs} priorities, got {len(pri)}")
    for i, level in enumerate(pri):
        if not 0 <= level < num_levels:
            raise ValueError(f"pri[{i}] = {level} outside [0, {num_levels})")
    if not is_thermometer(rr_therm, num_inputs):
        raise ValueError(f"rr_therm {rr_therm:#x} is not thermometer encoded")

    k = num_inputs
    unrolled_list = unroll_requests(req, pri, rr_therm, k, num_levels)
    # Pack req_unroll into one wide bit vector, level p occupying bits
    # [p*k, (p+1)*k).
    req_unroll = 0
    for p, vec in enumerate(unrolled_list):
        req_unroll |= vec << (p * k)

    # Parallel-prefix OR: higher_pri_req[j] = OR of req_unroll[j+1 ..]. The
    # hardware bounds the prefix span using the thermometer structure of the
    # unrolled requests; the loop below is the literal translation.
    higher_pri_req = req_unroll >> 1
    for i in range(clog2(k - 1) if k > 1 else 0):
        higher_pri_req |= higher_pri_req >> (1 << i)

    grant_unroll = req_unroll & ~higher_pri_req

    # Fold the unrolled grants back down to k bits.
    for i in range(clog2(num_levels + 1)):
        grant_unroll |= grant_unroll >> (k << i)

    return grant_unroll & ((1 << k) - 1)


def behavioral_grant(
    req: int, pri: Sequence[int], rr_therm: int, num_inputs: int, num_levels: int
) -> Optional[int]:
    """Behavioural reference for :func:`priority_arb_bits`.

    The winner is the requesting input with the largest key
    ``(effective_level, index)``, where the effective level is
    ``min(P, pri[i] + rr_therm[i])`` -- the highest unrolled request level
    the input reaches. Returns the granted input index or ``None``.
    """
    best: Optional[int] = None
    best_key = (-1, -1)
    for i in range(num_inputs):
        if not (req >> i) & 1:
            continue
        rr_bit = (rr_therm >> i) & 1
        level = min(num_levels, pri[i] + rr_bit)
        key = (level, i)
        if key > best_key:
            best_key = key
            best = i
    return best


def grant_index(grant_vector: int) -> Optional[int]:
    """Convert a one-hot grant vector to an input index (or None)."""
    if grant_vector == 0:
        return None
    if grant_vector & (grant_vector - 1):
        raise ValueError(f"grant vector {grant_vector:#x} is not one-hot")
    return grant_vector.bit_length() - 1
