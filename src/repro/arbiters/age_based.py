"""Age-based arbitration baseline.

Age-based packet arbitration [Abts & Weisser, SC 2007] grants the request
whose packet was injected earliest, providing strong global fairness at
the cost of carrying and comparing timestamps at every arbitration point.
The paper cites this as the heavy-weight technique that would have been
"prohibitively expensive" in the small, low-latency Anton 2 routers
(Section 3); it is implemented here as the quality reference against which
the inverse-weighted arbiter's fairness can be compared.
"""

from __future__ import annotations

from typing import Optional, Sequence

from .base import Arbiter, Request
from .round_robin import rr_order


class AgeBasedArbiter(Arbiter):
    """Oldest-packet-first arbiter with round-robin tie-breaking."""

    def __init__(self, num_inputs: int) -> None:
        super().__init__(num_inputs)
        self._pointer = 0

    def peek(self, requests: Sequence[Optional[Request]]) -> Optional[int]:
        best_index: Optional[int] = None
        best_age: Optional[int] = None
        for index in rr_order(self._pointer, self.num_inputs):
            request = requests[index]
            if request is None:
                continue
            age = request.inject_cycle
            if best_age is None or age < best_age:
                best_age = age
                best_index = index
        return best_index

    def commit(self, index: int, request: Request) -> None:
        self._pointer = index
        self.record_grant(index)

    def state(self) -> dict:
        out = super().state()
        out["pointer"] = self._pointer
        return out

    def restore(self, state: dict) -> None:
        super().restore(state)
        self._pointer = state["pointer"]
