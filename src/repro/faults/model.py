"""Declarative fault model: which channels fail, and when.

A fault set is a reproducible artifact: a list of :class:`FaultSpec`
entries (failed links or failed nodes, each with an optional mid-run
down/up schedule) plus the machine shape it was drawn for and the sampler
seed, serializable to JSON and back bit-for-bit. The rest of the
subsystem consumes fault sets three ways:

* :meth:`FaultSet.initial_failed` — channels already down at cycle 0,
  excluded from route construction before the run starts;
* :meth:`FaultSet.timeline` — scheduled mid-run link-down / link-up
  events, applied by the engine at their cycle;
* :func:`sample_link_faults` — a seeded random sampler (``k`` random
  link failures on an LxMxN machine) for degradation sweeps.

Endpoint-adapter links (E group) cannot fail: a dead endpoint link is
indistinguishable from removing the endpoint from the workload, which is
a traffic-pattern question, not a network-resilience one.
"""

from __future__ import annotations

import dataclasses
import json
import random
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.geometry import Coord3
from ..core.machine import ChannelGroup, ChannelKind, Machine

#: Fault-set JSON schema version.
FAULT_SCHEMA_VERSION = 1

#: Channel kinds eligible for link faults (everything but E-group links).
FAILABLE_KINDS: Tuple[ChannelKind, ...] = (
    ChannelKind.MESH,
    ChannelKind.SKIP,
    ChannelKind.ROUTER_TO_CA,
    ChannelKind.CA_TO_ROUTER,
    ChannelKind.TORUS,
)


@dataclasses.dataclass(frozen=True)
class FaultSpec:
    """One fault: a failed link or a failed node, with a down/up schedule.

    ``kind`` is ``"link"`` (``channel`` is the failed channel id) or
    ``"node"`` (``chip`` is the failed chip; every non-endpoint channel
    touching it fails). The channel is down from ``down_cycle`` (0 means
    before the run starts) until ``up_cycle`` (``None`` means forever).
    """

    kind: str
    channel: Optional[int] = None
    chip: Optional[Coord3] = None
    down_cycle: int = 0
    up_cycle: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in ("link", "node"):
            raise ValueError(f"fault kind must be 'link' or 'node', got {self.kind!r}")
        if self.kind == "link" and self.channel is None:
            raise ValueError("link fault needs a channel id")
        if self.kind == "node" and self.chip is None:
            raise ValueError("node fault needs a chip coordinate")
        if self.down_cycle < 0:
            raise ValueError(f"down_cycle must be >= 0, got {self.down_cycle}")
        if self.up_cycle is not None and self.up_cycle <= self.down_cycle:
            raise ValueError(
                f"up_cycle {self.up_cycle} must follow down_cycle {self.down_cycle}"
            )

    def to_dict(self) -> Dict:
        out: Dict = {"kind": self.kind, "down": self.down_cycle}
        if self.channel is not None:
            out["channel"] = self.channel
        if self.chip is not None:
            out["chip"] = list(self.chip)
        if self.up_cycle is not None:
            out["up"] = self.up_cycle
        return out

    @classmethod
    def from_dict(cls, data: Dict) -> "FaultSpec":
        chip = data.get("chip")
        return cls(
            kind=data["kind"],
            channel=data.get("channel"),
            chip=tuple(chip) if chip is not None else None,
            down_cycle=data.get("down", 0),
            up_cycle=data.get("up"),
        )

    def channels_on(self, machine: Machine) -> Tuple[int, ...]:
        """The channel ids this fault takes down on a concrete machine."""
        if self.kind == "link":
            return (self.channel,)
        cids = []
        for channel in machine.channels:
            if channel.group == ChannelGroup.E:
                continue
            if (
                machine.components[channel.src].chip == self.chip
                or machine.components[channel.dst].chip == self.chip
            ):
                cids.append(channel.cid)
        return tuple(cids)


@dataclasses.dataclass(frozen=True)
class FaultSet:
    """An ordered collection of faults bound to a machine shape."""

    specs: Tuple[FaultSpec, ...] = ()
    shape: Optional[Coord3] = None
    seed: Optional[int] = None
    note: str = ""
    #: Topology the set was drawn for; channel ids are only meaningful
    #: on the machine graph they were sampled from.
    topology: str = "torus"

    def __len__(self) -> int:
        return len(self.specs)

    # --- engine-facing views ------------------------------------------------

    def validate(self, machine: Machine) -> None:
        """Check every spec against a concrete machine; raise ValueError."""
        if self.shape is not None and self.shape != machine.config.shape:
            raise ValueError(
                f"fault set was drawn for shape {self.shape}, "
                f"machine is {machine.config.shape}"
            )
        if self.topology != machine.config.topology:
            raise ValueError(
                f"fault set was drawn for topology {self.topology!r}, "
                f"machine is {machine.config.topology!r}"
            )
        num_channels = len(machine.channels)
        for spec in self.specs:
            if spec.kind == "link":
                if not 0 <= spec.channel < num_channels:
                    raise ValueError(f"no channel {spec.channel} on this machine")
                channel = machine.channels[spec.channel]
                if channel.group == ChannelGroup.E:
                    raise ValueError(
                        f"endpoint-adapter link {channel} cannot fail; "
                        "remove the endpoint from the workload instead"
                    )
            else:
                shape = machine.config.shape
                if not all(0 <= spec.chip[d] < shape[d] for d in range(3)):
                    raise ValueError(
                        f"chip {spec.chip} is outside machine shape {shape}"
                    )

    def initial_failed(self, machine: Machine) -> frozenset:
        """Channel ids already down when the run starts (cycle 0)."""
        out = set()
        for spec in self.specs:
            if spec.down_cycle == 0:
                out.update(spec.channels_on(machine))
        return frozenset(out)

    def timeline(self, machine: Machine) -> List[Tuple[int, int, bool]]:
        """Scheduled ``(cycle, channel id, is_down)`` events, sorted.

        Down events at the same cycle sort before up events, and events
        are otherwise ordered by (cycle, channel id) so the engine's
        application order is deterministic.
        """
        events: List[Tuple[int, int, bool]] = []
        for spec in self.specs:
            for cid in spec.channels_on(machine):
                if spec.down_cycle > 0:
                    events.append((spec.down_cycle, cid, True))
                if spec.up_cycle is not None:
                    events.append((spec.up_cycle, cid, False))
        events.sort(key=lambda e: (e[0], not e[2], e[1]))
        return events

    def all_channels(self, machine: Machine) -> frozenset:
        """Every channel id any spec ever takes down."""
        out = set()
        for spec in self.specs:
            out.update(spec.channels_on(machine))
        return frozenset(out)

    # --- JSON round-trip ----------------------------------------------------

    def to_json(self, indent: Optional[int] = None) -> str:
        data: Dict = {
            "version": FAULT_SCHEMA_VERSION,
            "faults": [spec.to_dict() for spec in self.specs],
        }
        if self.shape is not None:
            data["shape"] = list(self.shape)
        if self.seed is not None:
            data["seed"] = self.seed
        if self.note:
            data["note"] = self.note
        if self.topology != "torus":
            data["topology"] = self.topology
        return json.dumps(data, sort_keys=True, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "FaultSet":
        data = json.loads(text)
        version = data.get("version")
        if version != FAULT_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported fault schema version {version!r} "
                f"(this build reads version {FAULT_SCHEMA_VERSION})"
            )
        shape = data.get("shape")
        return cls(
            specs=tuple(FaultSpec.from_dict(d) for d in data["faults"]),
            shape=tuple(shape) if shape is not None else None,
            seed=data.get("seed"),
            note=data.get("note", ""),
            topology=data.get("topology", "torus"),
        )


def failable_channels(
    machine: Machine, kinds: Sequence[ChannelKind] = (ChannelKind.TORUS,)
) -> List[int]:
    """Sorted candidate channel ids for link-fault sampling."""
    wanted = set(kinds)
    bad = wanted - set(FAILABLE_KINDS)
    if bad:
        raise ValueError(f"channel kinds {sorted(k.name for k in bad)} cannot fail")
    return sorted(
        channel.cid for channel in machine.channels if channel.kind in wanted
    )


def sample_link_faults(
    machine: Machine,
    k: int,
    seed: int,
    kinds: Sequence[ChannelKind] = (ChannelKind.TORUS,),
    down_cycle: int = 0,
    up_cycle: Optional[int] = None,
    note: str = "",
) -> FaultSet:
    """Draw ``k`` distinct random link failures, reproducibly.

    The candidate list is the sorted channel ids of the requested kinds,
    so the same (machine shape, kinds, seed, k) always yields the same
    fault set regardless of machine construction order.
    """
    candidates = failable_channels(machine, kinds)
    if k > len(candidates):
        raise ValueError(
            f"cannot sample {k} faults from {len(candidates)} candidate links"
        )
    rng = random.Random(seed)
    chosen = sorted(rng.sample(candidates, k))
    specs = tuple(
        FaultSpec(kind="link", channel=cid, down_cycle=down_cycle, up_cycle=up_cycle)
        for cid in chosen
    )
    return FaultSet(
        specs=specs,
        shape=machine.config.shape,
        seed=seed,
        note=note,
        topology=machine.config.topology,
    )
