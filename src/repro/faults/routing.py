"""Fault-aware route construction for degraded machines.

:class:`FaultAwareRouteComputer` resolves each requested route choice
against the current set of failed channels, in a deterministic escalation
order that stays as close to the healthy machine's behavior as possible:

1. **primary** — the requested choice, unchanged, if its route avoids
   every failed channel (so a fault-free machine routes identically);
2. **re-pick** — another of the existing legal choices: a different
   dimension order, channel slice, or minimal tie-break direction;
3. **non-minimal** — a monotone displacement the long way around one or
   more rings (``|delta| <= radix - 1``). A monotone ring traversal still
   crosses the dateline at most once, so the Section 2.5 VC-promotion
   argument carries over unchanged;
4. **detour** — a two-phase route through an intermediate chip, each
   phase a fresh minimal route with its own VC allocator (the classic
   intermediate-node construction). Detour route sets are not covered by
   the per-ring dateline argument, so degraded deadlock-freedom is
   re-verified mechanically (:mod:`repro.faults.verify`);
5. otherwise the pair is :class:`~repro.core.routing.Unroutable`.

Resolution is cached per (src, dst, choice, class) and invalidated when
the failed-channel set changes; with no failures every call is a direct
pass-through to the base computer, returning the identical cached
:class:`~repro.core.routing.Route` objects.
"""

from __future__ import annotations

import itertools
from collections import Counter
from typing import Dict, Iterable, Iterator, Optional, Sequence, Set, Tuple

from ..core import params
from ..core.geometry import Coord3, all_coords
from ..core.machine import Machine
from ..core.onchip import ANTON_DIRECTION_ORDER
from ..core.routing import (
    ALL_DIM_ORDERS,
    Route,
    RouteChoice,
    RouteComputer,
    Unroutable,
)

#: Resolution stages, in escalation order (keys of ``resolution_counts``).
RESOLUTION_STAGES = ("primary", "repick", "nonminimal", "detour", "unroutable")

_UNROUTABLE = object()  # cache sentinel


class FaultAwareRouteComputer(RouteComputer):
    """A route computer that routes around a mutable set of failed channels."""

    def __init__(
        self,
        machine: Machine,
        failed_channels: Iterable[int] = (),
        direction_order: Sequence = ANTON_DIRECTION_ORDER,
        allow_detour: bool = True,
    ) -> None:
        super().__init__(machine, direction_order, allow_nonminimal=True)
        self.allow_detour = allow_detour
        self._failed: frozenset = frozenset(failed_channels)
        #: How many resolutions each escalation stage served (diagnostics).
        self.resolution_counts: Counter = Counter()
        self._fault_cache: Dict[Tuple[int, int, RouteChoice, int], object] = {}
        self._reroute_cache: Dict[Tuple[int, int, int], object] = {}
        self._dead_pairs: Set[Tuple[int, int, int]] = set()

    @property
    def failed(self) -> frozenset:
        """The currently failed channel ids."""
        return self._failed

    def set_failed(self, channels: Iterable[int]) -> None:
        """Replace the failed-channel set, invalidating fault resolutions.

        Base (healthy) route caches survive: routes themselves do not
        depend on the fault state, only the resolution mapping does.
        """
        new = frozenset(channels)
        if new != self._failed:
            self._failed = new
            self._fault_cache.clear()
            self._reroute_cache.clear()
            self._dead_pairs.clear()

    def route_clear(self, route: Route, from_hop: int = 0) -> bool:
        """Whether a route avoids every currently failed channel."""
        failed = self._failed
        for cid, _vc in route.hops[from_hop:]:
            if cid in failed:
                return False
        return True

    # --- endpoint-to-endpoint resolution -----------------------------------

    def compute(
        self,
        src_endpoint: int,
        dst_endpoint: int,
        choice: RouteChoice,
        traffic_class: int = 0,
    ) -> Route:
        if not self._failed:
            return super().compute(src_endpoint, dst_endpoint, choice, traffic_class)
        key = (src_endpoint, dst_endpoint, choice, traffic_class)
        cached = self._fault_cache.get(key)
        if cached is not None:
            if cached is _UNROUTABLE:
                raise Unroutable(src_endpoint, dst_endpoint, "all choices blocked")
            return cached
        try:
            route = self._resolve(src_endpoint, dst_endpoint, choice, traffic_class)
        except Unroutable:
            self._fault_cache[key] = _UNROUTABLE
            self.resolution_counts["unroutable"] += 1
            raise
        self._fault_cache[key] = route
        return route

    def _resolve(
        self,
        src_endpoint: int,
        dst_endpoint: int,
        choice: RouteChoice,
        traffic_class: int,
    ) -> Route:
        primary = super().compute(src_endpoint, dst_endpoint, choice, traffic_class)
        if self.route_clear(primary):
            self.resolution_counts["primary"] += 1
            return primary

        machine = self.machine
        src_chip = machine.components[src_endpoint].chip
        dst_chip = machine.components[dst_endpoint].chip

        for cand in self._repick_choices(src_chip, dst_chip, choice):
            route = super().compute(src_endpoint, dst_endpoint, cand, traffic_class)
            if self.route_clear(route):
                self.resolution_counts["repick"] += 1
                return route

        for cand in self._nonminimal_choices(src_chip, dst_chip, choice.slice_index):
            route = super().compute(src_endpoint, dst_endpoint, cand, traffic_class)
            if self.route_clear(route):
                self.resolution_counts["nonminimal"] += 1
                return route

        pair_key = (src_endpoint, dst_endpoint, traffic_class)
        if self.allow_detour and pair_key not in self._dead_pairs:
            for legs in self._detour_plans(src_chip, dst_chip, choice.slice_index):
                route = self.compute_plan(
                    src_endpoint, dst_endpoint, legs, traffic_class
                )
                if self.route_clear(route):
                    self.resolution_counts["detour"] += 1
                    return route
            # The detour scan does not depend on the requested choice;
            # remember the pair is dead so other choices skip the scan.
            self._dead_pairs.add(pair_key)
        raise Unroutable(src_endpoint, dst_endpoint, "all choices blocked")

    # --- mid-route rerouting ------------------------------------------------

    def compute_reroute(
        self, start_component: int, dst_endpoint: int, traffic_class: int = 0
    ) -> Route:
        """A fresh route for a packet stranded mid-flight by a fault.

        ``start_component`` is the router or channel adapter currently
        holding (or about to receive) the packet. The same escalation
        order applies: minimal choices, then non-minimal, then a
        two-phase detour.
        """
        key = (start_component, dst_endpoint, traffic_class)
        cached = self._reroute_cache.get(key)
        if cached is not None:
            if cached is _UNROUTABLE:
                raise Unroutable(start_component, dst_endpoint, "stranded")
            return cached
        machine = self.machine
        src_chip = machine.components[start_component].chip
        dst_chip = machine.components[dst_endpoint].chip
        route: Optional[Route] = None
        for cand in self._repick_choices(src_chip, dst_chip, None):
            trial = self.compute_plan(
                start_component, dst_endpoint, ((dst_chip, cand),), traffic_class
            )
            if self.route_clear(trial):
                route = trial
                break
        if route is None:
            for cand in self._nonminimal_choices(src_chip, dst_chip, 0):
                trial = self.compute_plan(
                    start_component, dst_endpoint, ((dst_chip, cand),), traffic_class
                )
                if self.route_clear(trial):
                    route = trial
                    break
        if route is None and self.allow_detour:
            for legs in self._detour_plans(src_chip, dst_chip, 0):
                trial = self.compute_plan(
                    start_component, dst_endpoint, legs, traffic_class
                )
                if self.route_clear(trial):
                    route = trial
                    break
        if route is None:
            self._reroute_cache[key] = _UNROUTABLE
            raise Unroutable(start_component, dst_endpoint, "stranded")
        self._reroute_cache[key] = route
        return route

    # --- candidate enumeration ----------------------------------------------

    def _repick_choices(
        self, src_chip: Coord3, dst_chip: Coord3, requested: Optional[RouteChoice]
    ) -> Iterator[RouteChoice]:
        """Every existing legal choice, the requested slice's choices first."""
        preferred = requested.slice_index if requested is not None else 0
        ordered = sorted(range(params.NUM_SLICES), key=lambda s: s != preferred)
        topology = self.machine.topology
        delta_options = [
            topology.minimal_deltas(src_chip[d], dst_chip[d], d) for d in range(3)
        ]
        for slice_index in ordered:
            for dim_order in ALL_DIM_ORDERS:
                for deltas in itertools.product(*delta_options):
                    cand = self.intern_choice(dim_order, slice_index, tuple(deltas))
                    if requested is not None and cand == requested:
                        continue
                    yield cand

    def _nonminimal_choices(
        self, src_chip: Coord3, dst_chip: Coord3, preferred_slice: int
    ) -> Iterator[RouteChoice]:
        """Monotone non-minimal delta combinations, shortest paths first.

        On line dimensions the monotone displacement set equals the
        minimal one, so every combination is skipped as already covered
        by re-pick and escalation proceeds straight to the detour stage.
        """
        topology = self.machine.topology
        options = [
            topology.monotone_deltas(src_chip[d], dst_chip[d], d) for d in range(3)
        ]
        minimal = [
            topology.minimal_deltas(src_chip[d], dst_chip[d], d) for d in range(3)
        ]
        combos = sorted(
            itertools.product(*options),
            key=lambda combo: (sum(abs(x) for x in combo), combo),
        )
        ordered_slices = sorted(
            range(params.NUM_SLICES), key=lambda s: s != preferred_slice
        )
        for combo in combos:
            if all(combo[d] in minimal[d] for d in range(3)):
                continue  # covered by the re-pick stage
            for slice_index in ordered_slices:
                for dim_order in ALL_DIM_ORDERS:
                    yield self.intern_choice(dim_order, slice_index, combo)

    def _detour_plans(
        self, src_chip: Coord3, dst_chip: Coord3, preferred_slice: int
    ) -> Iterator[Tuple[Tuple[Coord3, RouteChoice], ...]]:
        """Two-phase plans through intermediate chips, nearest first."""
        topology = self.machine.topology
        shape = self.machine.config.shape
        vias = sorted(
            (
                (topology.hops(src_chip, via) + topology.hops(via, dst_chip), via)
                for via in all_coords(shape)
                if via != src_chip and via != dst_chip
            ),
        )
        ordered_slices = sorted(
            range(params.NUM_SLICES), key=lambda s: s != preferred_slice
        )
        for _hops, via in vias:
            for slice_index in ordered_slices:
                for order_a in ALL_DIM_ORDERS:
                    for order_b in ALL_DIM_ORDERS:
                        yield (
                            (via, self.intern_choice(order_a, slice_index, None)),
                            (dst_chip, self.intern_choice(order_b, slice_index, None)),
                        )
