"""Fault injection and degraded-topology resilience.

Everything needed to run any study on a broken machine: a declarative,
JSON-round-trippable fault model (:mod:`~repro.faults.model`),
fault-aware route resolution preserving the Section 2.5 VC invariants
(:mod:`~repro.faults.routing`), the engine-facing policy/schedule bundle
(:mod:`~repro.faults.runtime`), and mechanical deadlock re-verification
of degraded route sets (:mod:`~repro.faults.verify`).
"""

from ..core.routing import Unroutable
from .model import (
    FAILABLE_KINDS,
    FAULT_SCHEMA_VERSION,
    FaultSet,
    FaultSpec,
    failable_channels,
    sample_link_faults,
)
from .routing import RESOLUTION_STAGES, FaultAwareRouteComputer
from .runtime import POLICY_MODES, FaultPolicy, FaultRuntime
from .verify import (
    SingleFailureReport,
    degraded_report,
    verify_single_link_failures,
)

__all__ = [
    "FAILABLE_KINDS",
    "FAULT_SCHEMA_VERSION",
    "FaultAwareRouteComputer",
    "FaultPolicy",
    "FaultRuntime",
    "FaultSet",
    "FaultSpec",
    "POLICY_MODES",
    "RESOLUTION_STAGES",
    "SingleFailureReport",
    "Unroutable",
    "degraded_report",
    "failable_channels",
    "sample_link_faults",
    "verify_single_link_failures",
]
