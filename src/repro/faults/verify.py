"""Mechanical deadlock-freedom verification for degraded machines.

The Section 2.5 dateline argument covers healthy minimal routing and
extends to monotone non-minimal displacements, but two-phase detours
restart the VC allocator mid-route, so their safety is machine- and
fault-specific. This module re-verifies the degraded channel-dependency
graph mechanically:

* :func:`degraded_report` — full deadlock analysis of one fault set's
  resolved route set (wraps :func:`repro.core.deadlock.analyze_routes`);
* :func:`verify_single_link_failures` — the exhaustive property: for
  *every* single failable link of a machine, the degraded route set
  keeps the dependency graph acyclic. Incremental: the healthy edge
  multiset is built once, and each failure only re-resolves the routes
  that crossed the failed channel.
"""

from __future__ import annotations

import dataclasses
from collections import Counter, defaultdict
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.deadlock import analyze_routes, enumerate_routes, route_dependency_edges
from ..core.machine import ChannelKind, Machine
from ..core.routing import RouteComputer, Unroutable
from .model import FaultSet, failable_channels
from .routing import FaultAwareRouteComputer


def degraded_report(
    machine: Machine,
    fault_set: FaultSet,
    endpoints_per_chip: Optional[int] = None,
    allow_detour: bool = True,
):
    """Full deadlock analysis of a fault set's resolved route set.

    Uses every channel the fault set ever fails (including scheduled
    mid-run failures), i.e. the most-degraded topology the run can see.
    """
    computer = FaultAwareRouteComputer(machine, allow_detour=allow_detour)
    computer.set_failed(fault_set.all_channels(machine))
    routes = enumerate_routes(
        machine, computer, endpoints_per_chip, skip_unroutable=True
    )
    return analyze_routes(machine, routes)


@dataclasses.dataclass
class SingleFailureReport:
    """Result of the exhaustive single-link-failure sweep."""

    #: Channel ids checked (one failure each).
    checked: int
    #: Failed-channel ids whose degraded dependency graph has a cycle.
    cyclic: List[int]
    #: Failed-channel id -> number of (pair, choice) requests that became
    #: unroutable (empty for a healthy single-failure-tolerant machine).
    unroutable: Dict[int, int]
    #: Failed-channel id -> resolutions served beyond the re-pick stage.
    escalations: Dict[int, int]

    @property
    def all_acyclic(self) -> bool:
        return not self.cyclic


def _is_acyclic(edges) -> bool:
    """Kahn's algorithm over an edge iterable of ((c,v), (c,v)) pairs."""
    successors = defaultdict(list)
    indegree = Counter()
    nodes = set()
    for src, dst in edges:
        successors[src].append(dst)
        indegree[dst] += 1
        nodes.add(src)
        nodes.add(dst)
    ready = [node for node in nodes if indegree[node] == 0]
    seen = 0
    while ready:
        node = ready.pop()
        seen += 1
        for nxt in successors[node]:
            indegree[nxt] -= 1
            if indegree[nxt] == 0:
                ready.append(nxt)
    return seen == len(nodes)


def verify_single_link_failures(
    machine: Machine,
    kinds: Sequence[ChannelKind] = (ChannelKind.TORUS,),
    endpoints_per_chip: int = 1,
    allow_detour: bool = True,
) -> SingleFailureReport:
    """Check degraded deadlock-freedom under every single link failure.

    For each failable channel of the requested kinds, resolves the full
    route set with exactly that channel failed and tests the resulting
    (channel, VC) dependency graph for cycles. Incremental: routes not
    crossing the failed channel keep their healthy dependency edges, so
    each failure costs only the re-resolution of affected routes plus
    one acyclicity pass.
    """
    healthy = RouteComputer(machine)
    baseline = list(enumerate_routes(machine, healthy, endpoints_per_chip))
    base_edges: List[List] = []
    edge_count: Counter = Counter()
    routes_using: Dict[int, List[int]] = defaultdict(list)
    for index, route in enumerate(baseline):
        edges = route_dependency_edges(machine, route)
        base_edges.append(edges)
        for edge in edges:
            edge_count[edge] += 1
        for cid in set(route.channels()):
            routes_using[cid].append(index)

    cyclic: List[int] = []
    unroutable: Dict[int, int] = {}
    escalations: Dict[int, int] = {}
    candidates = failable_channels(machine, kinds)
    for cid in candidates:
        affected = routes_using.get(cid, ())
        removed: Counter = Counter()
        added: Counter = Counter()
        computer = FaultAwareRouteComputer(
            machine, (cid,), allow_detour=allow_detour
        )
        dead = 0
        for index in affected:
            route = baseline[index]
            for edge in base_edges[index]:
                removed[edge] += 1
            try:
                replacement = computer.compute(route.src, route.dst, route.choice)
            except Unroutable:
                dead += 1
                continue
            for edge in route_dependency_edges(machine, replacement):
                added[edge] += 1
        if dead:
            unroutable[cid] = dead
        escalated = sum(
            count
            for stage, count in computer.resolution_counts.items()
            if stage not in ("primary", "repick")
        )
        if escalated:
            escalations[cid] = escalated

        def surviving_edges():
            for edge, count in edge_count.items():
                if count - removed[edge] + added[edge] > 0:
                    yield edge
            for edge, count in added.items():
                if edge not in edge_count and count > 0:
                    yield edge

        if not _is_acyclic(surviving_edges()):
            cyclic.append(cid)

    return SingleFailureReport(
        checked=len(candidates),
        cyclic=cyclic,
        unroutable=unroutable,
        escalations=escalations,
    )
