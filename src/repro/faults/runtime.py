"""Engine-facing fault state: policy + schedule + route computer.

A :class:`FaultRuntime` is what the engine consumes: it binds a
:class:`~repro.faults.model.FaultSet` to a concrete machine, owns the
:class:`~repro.faults.routing.FaultAwareRouteComputer` used for every
re-resolution, and carries the :class:`FaultPolicy` deciding what happens
to packets stranded by a mid-run failure.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

from ..core.machine import Machine
from .model import FaultSet
from .routing import FaultAwareRouteComputer

#: What to do with packets whose remaining route crosses a failed channel.
POLICY_MODES = ("reroute", "drop", "retry")


@dataclasses.dataclass(frozen=True)
class FaultPolicy:
    """Disposition of packets stranded by a mid-run link failure.

    * ``"reroute"`` — recompute the remainder of the route in place from
      the component currently holding the packet (drop only if the
      degraded machine is Unroutable from there);
    * ``"drop"`` — drop the packet and count it;
    * ``"retry"`` — drop the in-network copy and re-inject from the
      source with bounded exponential backoff (``backoff_base_cycles *
      2**(attempt-1)``, capped at ``backoff_cap_cycles``), giving up
      after ``max_retries`` attempts.

    Packets still waiting in a source queue are always re-routed at
    injection time (or dropped if unroutable) — they have not entered
    the network, so retry semantics do not apply to them.
    """

    mode: str = "reroute"
    max_retries: int = 4
    backoff_base_cycles: int = 8
    backoff_cap_cycles: int = 256

    def __post_init__(self) -> None:
        if self.mode not in POLICY_MODES:
            raise ValueError(
                f"policy mode must be one of {POLICY_MODES}, got {self.mode!r}"
            )
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_base_cycles < 1 or self.backoff_cap_cycles < 1:
            raise ValueError("backoff cycles must be >= 1")

    def backoff(self, attempt: int) -> int:
        """Backoff delay in cycles before the ``attempt``-th re-injection."""
        return min(
            self.backoff_cap_cycles,
            self.backoff_base_cycles * (2 ** (attempt - 1)),
        )


class FaultRuntime:
    """A fault set bound to a machine, ready for the engine."""

    def __init__(
        self,
        machine: Machine,
        fault_set: FaultSet,
        policy: Optional[FaultPolicy] = None,
        route_computer: Optional[FaultAwareRouteComputer] = None,
    ) -> None:
        fault_set.validate(machine)
        self.machine = machine
        self.fault_set = fault_set
        self.policy = policy or FaultPolicy()
        #: The computer used for every fault-time re-resolution. Sharing
        #: one instance with the workload generator keeps its caches warm.
        self.route_computer = route_computer or FaultAwareRouteComputer(machine)
        if self.route_computer.machine is not machine:
            raise ValueError("route computer is bound to a different machine")
        #: Channels down before cycle 0.
        self.initial_failed: frozenset = fault_set.initial_failed(machine)
        #: Scheduled mid-run (cycle, channel, is_down) events.
        self.timeline: List[Tuple[int, int, bool]] = fault_set.timeline(machine)
        self.route_computer.set_failed(self.initial_failed)

    def extend(self, fault_set: FaultSet) -> List[Tuple[int, int, bool]]:
        """Merge additional (already validated) specs into the bound set.

        Supports live fault injection (``repro serve``'s ``inject_fault``
        request): the merged set is what a checkpoint of the engine
        serializes, so an evict/thaw cycle after an injection restores
        the same fault schedule bitwise. Returns the timeline events of
        just the *new* specs, for the caller to push onto the engine's
        wheel; ``initial_failed`` is deliberately untouched -- a running
        engine's failed-set lives on the engine, not here.
        """
        self.fault_set = dataclasses.replace(
            self.fault_set, specs=self.fault_set.specs + fault_set.specs
        )
        self.timeline = self.fault_set.timeline(self.machine)
        return fault_set.timeline(self.machine)
