"""Latency model: the ping-pong decomposition of Figures 11 and 12.

The paper measures software-to-software one-way message latency with a
ping-pong test. The measured latency is linear in the number of
inter-node hops (80.7 ns fixed + 39.1 ns/hop), the minimum inter-node
latency is about 99 ns, and Figure 12 decomposes that minimum into
endpoint/software overheads and network components -- with the actual
network accounting for only about 40% of the total.

We reproduce this with a calibrated per-component latency model applied
to the *actual routes* of the machine model: the latency of a message is
the software overhead plus the sum of the costs of every component and
channel its route traverses. Averaging over all endpoint pairs at each
hop distance and fitting a line reproduces Figure 11's shape; walking the
minimum route itemizes Figure 12.

Calibration: component costs are set from the on-chip clock (one 0.667 ns
cycle per pipeline stage or mesh hop) and the published endpoints
(99 ns minimum, ~40% network share, 39.1 ns/hop slope), and are checked
against those numbers by the test suite.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core import params
from repro.core.geometry import all_coords, torus_hops
from repro.core.machine import ChannelKind, ComponentKind, Machine
from repro.core.routing import RouteChoice, RouteComputer

#: Names of the four router pipeline stages (Figure 12).
ROUTER_STAGES = ("RC", "VA", "SA1", "SA2")


@dataclasses.dataclass(frozen=True)
class LatencyModel:
    """Per-component one-way latency contributions, in nanoseconds."""

    #: Software send overhead at the source core (store assembly, doorbell).
    software_send_ns: float = 27.0
    #: Receive-side synchronization and handler dispatch [Grossman 2013].
    software_receive_ns: float = 23.0
    #: Endpoint adapter traversal (each of source and destination).
    endpoint_adapter_ns: float = 2.0
    #: One router pipeline stage (RC, VA, SA1 or SA2): one 1.5 GHz cycle.
    router_stage_ns: float = params.CYCLE_NS
    #: One mesh channel hop (wire + retiming): one cycle.
    mesh_hop_ns: float = params.CYCLE_NS
    #: One skip channel hop (longer wire, still one pipelined cycle).
    skip_hop_ns: float = params.CYCLE_NS
    #: Channel adapter traversal (framing/deframing, CRC).
    channel_adapter_ns: float = 2.3
    #: SerDes serialization + deserialization + cable flight per torus hop.
    #: Calibrated so the per-hop slope matches the paper's 39.1 ns and the
    #: minimum inter-node latency lands at ~99 ns. The fit's *intercept*
    #: comes out ~70 ns versus the paper's 80.7 ns because it depends on
    #: the average on-chip path length between endpoints, which in turn
    #: depends on the unpublished endpoint-adapter placement.
    serdes_wire_ns: float = 29.2

    @property
    def router_ns(self) -> float:
        """Full router traversal: all four pipeline stages."""
        return len(ROUTER_STAGES) * self.router_stage_ns

    @property
    def software_ns(self) -> float:
        return self.software_send_ns + self.software_receive_ns

    def route_latency_ns(self, machine: Machine, route) -> float:
        """One-way latency of a specific route, software included."""
        return self.software_ns + sum(
            ns for _label, ns in self.route_breakdown(machine, route)[1:]
        )

    def route_breakdown(self, machine: Machine, route) -> List[Tuple[str, float]]:
        """Itemized latency of a route, Figure 12 style.

        Returns ``(label, ns)`` pairs in traversal order, starting with
        the software overhead (send + receive combined).
        """
        items: List[Tuple[str, float]] = [("software+sync", self.software_ns)]
        for channel_id, _vc in route.hops:
            channel = machine.channels[channel_id]
            kind = channel.kind
            if kind == ChannelKind.EP_TO_ROUTER:
                items.append(("E(src)", self.endpoint_adapter_ns))
            elif kind == ChannelKind.ROUTER_TO_EP:
                # Traverse the router feeding the endpoint, then the
                # destination endpoint adapter.
                items.append(("R(pipeline)", self.router_ns))
                items.append(("E(dst)", self.endpoint_adapter_ns))
            elif kind == ChannelKind.MESH:
                items.append(("R(pipeline)", self.router_ns))
                items.append(("mesh wire", self.mesh_hop_ns))
            elif kind == ChannelKind.SKIP:
                items.append(("R(pipeline)", self.router_ns))
                items.append(("skip wire", self.skip_hop_ns))
            elif kind == ChannelKind.ROUTER_TO_CA:
                items.append(("R(pipeline)", self.router_ns))
                items.append(("C(egress)", self.channel_adapter_ns))
            elif kind == ChannelKind.CA_TO_ROUTER:
                items.append(("C(ingress)", self.channel_adapter_ns))
            elif kind == ChannelKind.TORUS:
                items.append(("SerDes+wire", self.serdes_wire_ns))
        return items


def minimum_internode_route(machine: Machine, route_computer: RouteComputer):
    """The fastest one-hop route in the machine (for Figure 12).

    Scans one-hop neighbor pairs and all route choices, returning the
    route with the fewest hops (a Y or Z hop between endpoints adjacent
    to the channel-adapter routers).
    """
    best = None
    origin = (0, 0, 0)
    count = machine.config.endpoints_per_chip
    for dst_chip in all_coords(machine.config.shape):
        if torus_hops(origin, dst_chip, machine.config.shape) != 1:
            continue
        for src_index in range(count):
            src_ep = machine.ep_id[(origin, src_index)]
            for dst_index in range(count):
                dst_ep = machine.ep_id[(dst_chip, dst_index)]
                for choice, _prob in route_computer.all_choices(origin, dst_chip):
                    route = route_computer.compute(src_ep, dst_ep, choice)
                    if best is None or len(route.hops) < len(best.hops):
                        best = route
    if best is None:
        raise ValueError("machine has no one-hop neighbor pairs")
    return best


def latency_vs_hops(
    machine: Machine,
    route_computer: RouteComputer,
    model: Optional[LatencyModel] = None,
    max_pairs_per_distance: int = 64,
) -> Dict[int, float]:
    """Mean one-way latency (ns) at each inter-node hop distance.

    Averages the model latency over endpoint pairs (core 0 to core 0 of
    each destination chip, all route choices) grouped by minimal hop
    count -- the Figure 11 measurement. ``max_pairs_per_distance`` bounds
    the enumeration on large machines.
    """
    model = model or LatencyModel()
    shape = machine.config.shape
    sums: Dict[int, float] = {}
    counts: Dict[int, int] = {}
    origin = (0, 0, 0)
    src_ep = machine.ep_id[(origin, 0)]
    pairs_seen: Dict[int, int] = {}
    for dst_chip in all_coords(shape):
        if dst_chip == origin:
            continue
        hops = torus_hops(origin, dst_chip, shape)
        if pairs_seen.get(hops, 0) >= max_pairs_per_distance:
            continue
        pairs_seen[hops] = pairs_seen.get(hops, 0) + 1
        dst_ep = machine.ep_id[(dst_chip, 0)]
        for choice, prob in route_computer.all_choices(origin, dst_chip):
            route = route_computer.compute(src_ep, dst_ep, choice)
            latency = model.route_latency_ns(machine, route)
            sums[hops] = sums.get(hops, 0.0) + latency * prob
            counts[hops] = counts.get(hops, 0) + 1
    result = {}
    for hops, total in sums.items():
        result[hops] = total / pairs_seen[hops]
    return result


def linear_fit(latencies_by_hops: Dict[int, float]) -> Tuple[float, float]:
    """Least-squares line through (hops, latency): (intercept, slope).

    The paper's fit is 80.7 ns + 39.1 ns/hop.
    """
    hops = np.array(sorted(latencies_by_hops))
    values = np.array([latencies_by_hops[h] for h in hops])
    slope, intercept = np.polyfit(hops, values, 1)
    return float(intercept), float(slope)


def aggregate_breakdown(
    items: Sequence[Tuple[str, float]]
) -> List[Tuple[str, float]]:
    """Merge repeated labels of a route breakdown (Figure 12 bars)."""
    totals: Dict[str, float] = {}
    order: List[str] = []
    for label, ns in items:
        if label not in totals:
            totals[label] = 0.0
            order.append(label)
        totals[label] += ns
    return [(label, totals[label]) for label in order]


def network_fraction(items: Sequence[Tuple[str, float]]) -> float:
    """Fraction of the total latency spent in the network proper.

    The paper reports the network accounts for about 40% of the minimum
    inter-node latency; software, synchronization, and the endpoint
    adapters make up the rest.
    """
    total = sum(ns for _label, ns in items)
    endpoint_labels = {"software+sync", "E(src)", "E(dst)"}
    network = sum(ns for label, ns in items if label not in endpoint_labels)
    return network / total
