"""Parametric silicon-area model (Section 4.4, Tables 1 and 2).

The paper reports the network's area by component type (Table 1: router
3.4%, endpoint adapter 1.1%, channel adapter 4.7% of the die -- under 10%
total) and by category (Table 2: queues dominate at 46.6% of network
area; the inverse-weighted arbiters are the smallest at 5.4%, roughly
three-quarters of which is accumulator storage/update).

We rebuild those tables from structure. Storage-backed categories are
computed from first principles in *bit-area units* (one SRAM/flop bit =
one unit):

* **Queues** -- per-VC input buffers: VC count x depth x flit width, per
  port. Queue area is therefore proportional to the VC count, which is
  exactly why the Section 2.5 promotion algorithm (4 VCs instead of 6 on
  T-group channels) matters; the ``vc_scheme`` parameter exposes that
  ablation.
* **Arbiters** -- gate counts from :mod:`repro.arbiters.cost`, converted
  at a gates-to-bit-area ratio; the accumulator/priority-arbiter split is
  the cost model's, not a fitted constant.
* **Multicast** -- table storage: entries x entry width.

The remaining categories (reduction, link, configuration, debug,
miscellaneous) have no published structural parameters; they are carried
as per-component constants calibrated once against Table 2 and held
fixed across ablations.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Tuple

from repro.arbiters.cost import ArbiterCost
from repro.core import params

#: Bit-area units per gate equivalent (a logic gate is roughly half the
#: area of an SRAM bit cell with its margins in this normalization).
GATE_TO_BIT_AREA = 0.5

#: Multiplier covering arbiter implementation overheads the datapath gate
#: count does not see -- per-VC request muxing, grant fan-out, pipeline
#: registers, and place-and-route inefficiency of small control blocks.
#: Calibrated once against Table 2's arbiter row; the *relative* arbiter
#: claims (accumulator share ~3/4, P+1 vs 2P fixed-priority arbiters) come
#: from the unscaled cost model and are unaffected.
ARBITER_OVERHEAD_FACTOR = 4.4

#: Categories in Table 2 order.
CATEGORIES = (
    "Queues",
    "Reduction",
    "Link",
    "Configuration",
    "Debug",
    "Miscellaneous",
    "Multicast",
    "Arbiters",
)

#: Component labels in Table 1/2 order.
COMPONENTS = ("Router", "Endpoint", "Channel")


@dataclasses.dataclass(frozen=True)
class AreaConfig:
    """Structural parameters of the area model."""

    #: VC scheme ("anton" = 4 VCs/class on all channels; "baseline" =
    #: 6 VCs/class on T-group channels).
    vc_scheme: str = "anton"
    #: Traffic classes implemented in hardware.
    num_classes: int = params.NUM_TRAFFIC_CLASSES
    #: Queue depth per VC, in flits, for router and on-chip adapter ports.
    onchip_queue_flits: int = 8
    #: Queue depth per VC for the torus-side channel-adapter port (deep,
    #: to cover the inter-node credit round trip).
    torus_queue_flits: int = 56
    #: Flit width in bits.
    flit_bits: int = params.MESH_CHANNEL_BITS
    #: Router ports.
    router_ports: int = 6
    #: Multicast table entries per endpoint adapter ("several hundred
    #: distinct destination sets per node" across endpoints).
    multicast_entries_endpoint: int = 156
    #: Multicast table entries per channel adapter.
    multicast_entries_channel: int = 232
    #: Bits per multicast table entry (destination-set encoding).
    multicast_entry_bits: int = 48

    def vcs_per_class(self, group: str) -> int:
        if self.vc_scheme == "anton":
            return params.VCS_PER_CLASS_ANTON
        if self.vc_scheme == "baseline":
            return (
                params.VCS_PER_CLASS_BASELINE_T
                if group == "t"
                else params.VCS_PER_CLASS_BASELINE_M
            )
        raise ValueError(f"unknown vc_scheme {self.vc_scheme!r}")


#: Calibrated per-component constants (bit-area units) for categories
#: without published structure. Derived once from Table 2 with the
#: default AreaConfig; kept fixed across ablations.
_FIXED_CATEGORY_UNITS: Dict[str, Dict[str, float]] = {
    "Reduction": {"Router": 0.0, "Endpoint": 0.0, "Channel": 42_900.0},
    "Link": {"Router": 0.0, "Endpoint": 0.0, "Channel": 39_800.0},
    "Configuration": {"Router": 11_100.0, "Endpoint": 5_800.0, "Channel": 12_500.0},
    "Debug": {"Router": 10_100.0, "Endpoint": 5_800.0, "Channel": 10_300.0},
    "Miscellaneous": {"Router": 14_400.0, "Endpoint": 2_300.0, "Channel": 8_900.0},
}

#: Fraction of the die occupied by the whole network (Table 1 totals
#: 3.4 + 1.1 + 4.7 = 9.2%); the single die-level calibration constant.
NETWORK_DIE_FRACTION = 0.092


class AreaModel:
    """Computes Table 1 and Table 2 from structural parameters."""

    def __init__(self, config: AreaConfig = AreaConfig()) -> None:
        self.config = config

    # --- per-component category areas, in bit-area units -----------------------

    def queue_units(self, component: str) -> float:
        cfg = self.config
        flit = cfg.flit_bits
        classes = cfg.num_classes
        if component == "Router":
            # All six ports carry both T- and M-group traffic; the
            # hardware provisions the larger (T-group) VC count.
            vcs = cfg.vcs_per_class("t") * classes
            return cfg.router_ports * vcs * cfg.onchip_queue_flits * flit
        if component == "Endpoint":
            # One VC per traffic class, two ports.
            return 2 * classes * cfg.onchip_queue_flits * flit
        if component == "Channel":
            vcs = cfg.vcs_per_class("t") * classes
            torus_side = vcs * cfg.torus_queue_flits * flit
            router_side = vcs * cfg.onchip_queue_flits * flit
            return torus_side + router_side
        raise ValueError(f"unknown component {component!r}")

    def arbiter_units(self, component: str) -> float:
        cfg = self.config
        if component == "Router":
            cost = ArbiterCost(
                num_inputs=cfg.router_ports,
                num_levels=2,
                weight_bits=5,
                num_patterns=2,
            )
            return (
                cfg.router_ports
                * cost.total_gates
                * GATE_TO_BIT_AREA
                * ARBITER_OVERHEAD_FACTOR
            )
        if component == "Endpoint":
            # Endpoint adapters only arbitrate trivially (< 0.1% in the
            # paper); model a single 2-input round-robin point.
            cost = ArbiterCost(num_inputs=2, num_levels=1, weight_bits=1, num_patterns=1)
            return cost.priority_arbiter_gates * GATE_TO_BIT_AREA
        if component == "Channel":
            cost = ArbiterCost(num_inputs=2, num_levels=2, weight_bits=5, num_patterns=2)
            return 2 * cost.total_gates * GATE_TO_BIT_AREA * ARBITER_OVERHEAD_FACTOR
        raise ValueError(f"unknown component {component!r}")

    def multicast_units(self, component: str) -> float:
        cfg = self.config
        if component == "Router":
            return 0.0
        if component == "Endpoint":
            return cfg.multicast_entries_endpoint * cfg.multicast_entry_bits
        if component == "Channel":
            return cfg.multicast_entries_channel * cfg.multicast_entry_bits
        raise ValueError(f"unknown component {component!r}")

    def category_units(self, category: str, component: str) -> float:
        if category == "Queues":
            return self.queue_units(component)
        if category == "Arbiters":
            return self.arbiter_units(component)
        if category == "Multicast":
            return self.multicast_units(component)
        return _FIXED_CATEGORY_UNITS[category][component]

    # --- table assembly ---------------------------------------------------------

    def component_counts(self) -> Dict[str, int]:
        return {
            "Router": params.ROUTERS_PER_ASIC,
            "Endpoint": params.ENDPOINTS_PER_ASIC,
            "Channel": params.CHANNEL_ADAPTERS_PER_ASIC,
        }

    def component_total_units(self, component: str) -> float:
        """Area of one instance of a component, all categories."""
        return sum(
            self.category_units(category, component) for category in CATEGORIES
        )

    def network_total_units(self) -> float:
        counts = self.component_counts()
        return sum(
            counts[component] * self.component_total_units(component)
            for component in COMPONENTS
        )

    def table2(self) -> Dict[str, Dict[str, float]]:
        """Table 2: percent of network area, by category and component.

        Returns ``{category: {component: pct, ..., "Total": pct}}``.
        """
        counts = self.component_counts()
        network = self.network_total_units()
        table: Dict[str, Dict[str, float]] = {}
        for category in CATEGORIES:
            row: Dict[str, float] = {}
            total = 0.0
            for component in COMPONENTS:
                units = counts[component] * self.category_units(category, component)
                pct = 100.0 * units / network
                row[component] = pct
                total += pct
            row["Total"] = total
            table[category] = row
        return table

    def table1(self, network_die_fraction: float = NETWORK_DIE_FRACTION) -> Dict[str, float]:
        """Table 1: percent of total die area, by component type.

        ``network_die_fraction`` is the single die-level calibration (the
        published network total of 9.2%).
        """
        counts = self.component_counts()
        network = self.network_total_units()
        result = {}
        for component in COMPONENTS:
            units = counts[component] * self.component_total_units(component)
            result[component] = 100.0 * network_die_fraction * units / network
        return result

    def arbiter_accumulator_fraction(self) -> float:
        """Share of router arbiter area in accumulators/weights/update.

        The paper reports approximately three-quarters.
        """
        cost = ArbiterCost(
            num_inputs=self.config.router_ports,
            num_levels=2,
            weight_bits=5,
            num_patterns=2,
        )
        return cost.accumulator_fraction


def queue_area_saving(num_dims: int = 3) -> float:
    """Fractional T-group queue saving of the promotion VC scheme.

    ``(2n - (n + 1)) / 2n``: one-third for a three-dimensional torus --
    the paper's headline VC reduction.
    """
    baseline = 2 * num_dims
    anton = num_dims + 1
    return (baseline - anton) / baseline
