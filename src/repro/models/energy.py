"""Router energy model with activation rate (Section 4.5, Figure 13).

The paper measures per-flit router energy as a function of injection rate
``r`` for three payload patterns (all zeros, all ones, random) and fits

    E = 42.7 + 0.837 h + (34.4 + 0.250 n) (a / r)   pJ,

where ``h`` is the mean Hamming distance between successive valid flits,
``n`` the mean number of set payload bits, and ``a`` the *activation
rate* -- the rate of idle-to-valid transitions at a router port, with
``0 <= a <= min(r, 1 - r)``. The activation term is the paper's novel
contribution to router power modeling.

This module provides:

* :class:`EnergyModel` -- the fitted model, with the paper's coefficients
  as defaults;
* flit-stream synthesis (:func:`make_stream`, :func:`stream_statistics`)
  that builds actual 192-bit flit sequences at a chosen injection and
  activation rate and measures ``h`` and ``n`` bit-exactly;
* the paper's two-route measurement methodology
  (:func:`measure_per_hop_energy`): per-hop energy recovered by
  subtracting the power of a 3-hop route from a 35-hop route;
* least-squares coefficient recovery (:func:`fit_model`) from synthetic
  measurements -- the model is linear in its four coefficients, so an
  ordinary linear regression suffices.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core import params

#: Payload width in bits (a 24-byte flit carries a 192-bit payload path).
FLIT_BITS = params.MESH_CHANNEL_BITS

#: The three payload patterns measured in Figure 13.
PAYLOAD_PATTERNS = ("zeros", "ones", "random")


@dataclasses.dataclass(frozen=True)
class EnergyModel:
    """Per-flit router energy, in picojoules."""

    fixed_pj: float = params.ENERGY_FIXED_PJ
    per_bitflip_pj: float = params.ENERGY_PER_BITFLIP_PJ
    activation_fixed_pj: float = params.ENERGY_ACTIVATION_FIXED_PJ
    activation_per_setbit_pj: float = params.ENERGY_ACTIVATION_PER_SETBIT_PJ

    def per_flit_energy(
        self, injection_rate: float, activation_rate: float, hamming: float, set_bits: float
    ) -> float:
        """Energy per flit for a stream with the given statistics.

        ``injection_rate`` is flits per cycle (0 < r <= 1);
        ``activation_rate`` must satisfy ``0 <= a <= min(r, 1 - r)``.
        """
        r, a = injection_rate, activation_rate
        if not 0 < r <= 1:
            raise ValueError(f"injection rate must be in (0, 1], got {r}")
        # The tolerance accommodates rates measured from finite streams,
        # where rounding can push a marginally past min(r, 1 - r).
        if a < -1e-12 or a > min(r, 1 - r) + 1e-3:
            raise ValueError(
                f"activation rate {a} outside [0, min(r, 1-r)] for r={r}"
            )
        return (
            self.fixed_pj
            + self.per_bitflip_pj * hamming
            + (self.activation_fixed_pj + self.activation_per_setbit_pj * set_bits)
            * (a / r)
        )

    def coefficients(self) -> Tuple[float, float, float, float]:
        return (
            self.fixed_pj,
            self.per_bitflip_pj,
            self.activation_fixed_pj,
            self.activation_per_setbit_pj,
        )


def max_activation_rate(injection_rate: float) -> float:
    """The maximal activation rate used in the paper's experiments."""
    return min(injection_rate, 1.0 - injection_rate)


def payload_flit(pattern: str, rng: random.Random) -> int:
    """One flit payload as an integer bit vector."""
    if pattern == "zeros":
        return 0
    if pattern == "ones":
        return (1 << FLIT_BITS) - 1
    if pattern == "random":
        return rng.getrandbits(FLIT_BITS)
    raise ValueError(f"unknown payload pattern {pattern!r}")


def make_stream(
    pattern: str,
    injection_rate: float,
    length_cycles: int,
    seed: int = 0,
    activation_rate: Optional[float] = None,
) -> List[Optional[int]]:
    """A cycle-by-cycle flit stream: payload bits or None for idle cycles.

    The valid/idle schedule realizes the requested injection rate ``r``
    and activation rate ``a`` (default: maximal, ``min(r, 1-r)``) by
    emitting bursts of ``ceil(r/a)``-ish valid cycles separated by idle
    gaps, mirroring the paper's experimental setup that maximized
    activations.
    """
    if not 0 < injection_rate <= 1:
        raise ValueError(f"injection rate must be in (0, 1], got {injection_rate}")
    if activation_rate is None:
        activation_rate = max_activation_rate(injection_rate)
    if activation_rate <= 0:
        if injection_rate < 1.0:
            raise ValueError("activation rate must be positive for r < 1")
        # r = 1: one unbroken burst.
        rng = random.Random(seed)
        return [payload_flit(pattern, rng) for _ in range(length_cycles)]
    if activation_rate > max_activation_rate(injection_rate) + 1e-12:
        raise ValueError(
            f"activation rate {activation_rate} exceeds min(r, 1-r) for "
            f"r={injection_rate}"
        )
    rng = random.Random(seed)
    stream: List[Optional[int]] = []
    # One burst per activation period. Error diffusion on both the burst
    # lengths (r / a valid cycles per period) and the period lengths
    # (1 / a cycles) realizes the exact rates in the long run; e.g.
    # r = 0.75, a = 0.25 yields ...0111 0111... as in the paper's example.
    burst_exact = injection_rate / activation_rate
    period_exact = 1.0 / activation_rate
    target_valid = 0.0
    target_cycles = 0.0
    emitted_valid = 0
    emitted_cycles = 0
    while emitted_cycles < length_cycles:
        target_valid += burst_exact
        target_cycles += period_exact
        burst = max(1, round(target_valid) - emitted_valid)
        period = max(burst + 1, round(target_cycles) - emitted_cycles)
        for i in range(min(period, length_cycles - emitted_cycles)):
            stream.append(payload_flit(pattern, rng) if i < burst else None)
        emitted_valid += burst
        emitted_cycles += period
    return stream[:length_cycles]


@dataclasses.dataclass
class StreamStats:
    """Measured statistics of a flit stream."""

    injection_rate: float
    activation_rate: float
    mean_hamming: float
    mean_set_bits: float
    flits: int


def stream_statistics(stream: Sequence[Optional[int]]) -> StreamStats:
    """Measure r, a, h, n of a stream bit-exactly."""
    flits = 0
    activations = 0
    hamming_total = 0
    set_bits_total = 0
    previous_flit: Optional[int] = None
    previous_valid = False
    for flit in stream:
        if flit is None:
            previous_valid = False
            continue
        flits += 1
        if not previous_valid:
            activations += 1
        set_bits_total += bin(flit).count("1")
        if previous_flit is not None:
            hamming_total += bin(flit ^ previous_flit).count("1")
        previous_flit = flit
        previous_valid = True
    if flits == 0:
        raise ValueError("stream contains no flits")
    cycles = len(stream)
    return StreamStats(
        injection_rate=flits / cycles,
        activation_rate=activations / cycles,
        mean_hamming=hamming_total / max(1, flits - 1),
        mean_set_bits=set_bits_total / flits,
        flits=flits,
    )


def measure_per_hop_energy(
    model: EnergyModel,
    pattern: str,
    injection_rate: float,
    length_cycles: int = 4096,
    seed: int = 0,
    noise_pj: float = 0.0,
    long_hops: int = 35,
    short_hops: int = 3,
) -> float:
    """The paper's two-route methodology, reproduced end to end.

    A core streams flits around a ``long_hops``-hop route and a
    ``short_hops``-hop route confined to one chip; router power is the
    per-hop energy times hops times injection rate (idle power excluded,
    as in the paper's methodology footnote). Subtracting the two powers
    and dividing by the hop difference and injection rate recovers the
    per-flit, per-hop energy.
    """
    stream = make_stream(pattern, injection_rate, length_cycles, seed)
    stats = stream_statistics(stream)
    per_hop = model.per_flit_energy(
        stats.injection_rate,
        stats.activation_rate,
        stats.mean_hamming,
        stats.mean_set_bits,
    )
    rng = random.Random(seed + 1)

    def route_power(hops: int) -> float:
        power = per_hop * hops * stats.injection_rate
        if noise_pj:
            power += rng.gauss(0.0, noise_pj * hops * stats.injection_rate)
        return power

    delta_power = route_power(long_hops) - route_power(short_hops)
    return delta_power / (long_hops - short_hops) / stats.injection_rate


def energy_curve(
    model: EnergyModel,
    pattern: str,
    rates: Sequence[float],
    length_cycles: int = 4096,
    seed: int = 0,
) -> List[Tuple[float, float]]:
    """Per-flit energy at each injection rate (one Figure 13 curve)."""
    curve = []
    for rate in rates:
        energy = measure_per_hop_energy(model, pattern, rate, length_cycles, seed)
        curve.append((rate, energy))
    return curve


def fit_model(
    measurements: Sequence[Tuple[StreamStats, float]]
) -> EnergyModel:
    """Least-squares fit of the four model coefficients.

    ``measurements`` pairs stream statistics with measured per-flit
    energies. The model is linear in its coefficients:
    ``E = c0 + c1 h + c2 (a/r) + c3 (n a/r)``.
    """
    if len(measurements) < 4:
        raise ValueError("need at least four measurements to fit four coefficients")
    rows = []
    targets = []
    for stats, energy in measurements:
        ratio = stats.activation_rate / stats.injection_rate
        rows.append([1.0, stats.mean_hamming, ratio, stats.mean_set_bits * ratio])
        targets.append(energy)
    coeffs, _residuals, rank, _sv = np.linalg.lstsq(
        np.array(rows), np.array(targets), rcond=None
    )
    if rank < 4:
        raise ValueError(
            "measurement set is degenerate (vary payloads and rates to "
            "identify all four coefficients)"
        )
    return EnergyModel(
        fixed_pj=float(coeffs[0]),
        per_bitflip_pj=float(coeffs[1]),
        activation_fixed_pj=float(coeffs[2]),
        activation_per_setbit_pj=float(coeffs[3]),
    )


def synthesize_measurements(
    model: Optional[EnergyModel] = None,
    patterns: Sequence[str] = PAYLOAD_PATTERNS,
    rates: Sequence[float] = (0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9),
    length_cycles: int = 4096,
    noise_pj: float = 0.5,
    seed: int = 0,
) -> List[Tuple[StreamStats, float]]:
    """Generate noisy synthetic measurements across patterns and rates."""
    model = model or EnergyModel()
    rng = random.Random(seed)
    measurements = []
    for pattern in patterns:
        for rate in rates:
            stream = make_stream(pattern, rate, length_cycles, seed)
            stats = stream_statistics(stream)
            energy = model.per_flit_energy(
                stats.injection_rate,
                stats.activation_rate,
                stats.mean_hamming,
                stats.mean_set_bits,
            )
            if noise_pj:
                energy += rng.gauss(0.0, noise_pj)
            measurements.append((stats, energy))
    return measurements
