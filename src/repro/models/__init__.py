"""Measurement models: latency (Figs 11-12), energy (Fig 13), area (Tables 1-2)."""

from .area import AreaConfig, AreaModel, CATEGORIES, COMPONENTS, queue_area_saving
from .energy import (
    EnergyModel,
    PAYLOAD_PATTERNS,
    StreamStats,
    energy_curve,
    fit_model,
    make_stream,
    max_activation_rate,
    measure_per_hop_energy,
    stream_statistics,
    synthesize_measurements,
)
from .latency import (
    LatencyModel,
    ROUTER_STAGES,
    aggregate_breakdown,
    latency_vs_hops,
    linear_fit,
    minimum_internode_route,
    network_fraction,
)

__all__ = [
    "AreaConfig",
    "AreaModel",
    "CATEGORIES",
    "COMPONENTS",
    "EnergyModel",
    "LatencyModel",
    "PAYLOAD_PATTERNS",
    "ROUTER_STAGES",
    "StreamStats",
    "aggregate_breakdown",
    "energy_curve",
    "fit_model",
    "latency_vs_hops",
    "linear_fit",
    "make_stream",
    "max_activation_rate",
    "measure_per_hop_energy",
    "minimum_internode_route",
    "network_fraction",
    "queue_area_saving",
    "stream_statistics",
    "synthesize_measurements",
]
