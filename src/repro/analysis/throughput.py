"""Throughput experiment harnesses (Figures 9 and 10).

These wrap the simulator into the paper's measurement methodology:
normalized batch throughput versus batch size for different arbitration
policies (Figure 9), and versus blend fraction for different arbiter
weight sets (Figure 10).

Every measured point is an independent simulation, so the sweeps fan
points across cores through :mod:`repro.sim.sweep`: a point is described
by a picklable :class:`BatchPoint` spec, worker processes rebuild the
machine from its config (cached per process) and run
:func:`measure_batch_point`. The engine's exact fixed-point timing makes
the parallel results bitwise-identical to a serial loop.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.machine import Machine, MachineConfig
from repro.core.routing import RouteComputer
from repro.sim.metrics import MetricsCollector, MetricsSummary
from repro.sim.simulator import make_vc_weight_tables, make_weight_tables, run_batch
from repro.sim.sweep import SweepPoint, run_sweep, shared_machine
from repro.traffic.batch import BatchSpec
from repro.traffic.loads import LoadTable, compute_loads, ideal_batch_cycles
from repro.traffic.patterns import Blend, TrafficPattern


@dataclasses.dataclass
class ThroughputPoint:
    """One measured point of a throughput experiment."""

    pattern: str
    arbitration: str
    batch_size: int
    normalized_throughput: float
    finish_spread: float
    completion_cycles: int
    wall_seconds: float
    #: Streaming metric summary (latency quantiles, busy windows, VC
    #: occupancy) when the point was measured with ``collect_metrics``.
    metrics: Optional[MetricsSummary] = None


def measure_batch(
    machine: Machine,
    route_computer: RouteComputer,
    pattern: TrafficPattern,
    batch_size: int,
    cores_per_chip: int,
    arbitration: str,
    load_table: Optional[LoadTable] = None,
    weight_tables: Optional[Dict] = None,
    vc_weight_tables: Optional[Dict] = None,
    seed: int = 0,
    label: Optional[str] = None,
    collector: Optional[MetricsCollector] = None,
    checkpoint_path: Optional[str] = None,
    checkpoint_every: int = 0,
) -> ThroughputPoint:
    """Run one batch and normalize its completion time.

    Normalization follows Section 4.1: a throughput of 1 means the
    busiest torus channel (under the pattern's expected loads) was never
    idle. A :class:`~repro.sim.metrics.MetricsCollector` may be attached
    to also stream per-channel and latency metrics out of the run; its
    summary rides along on the returned point.

    ``checkpoint_path`` + ``checkpoint_every`` enable the periodic
    checkpoint/resume behavior of :func:`repro.sim.simulator.run_batch`:
    an interrupted point resumes mid-run and its measured result is
    bitwise-identical to a never-interrupted execution.
    """
    if load_table is None:
        load_table = compute_loads(machine, route_computer, pattern, cores_per_chip)
    if arbitration == "iw" and weight_tables is None:
        # Default to weights programmed from the measured pattern itself.
        weight_tables = make_weight_tables(
            machine,
            route_computer,
            [pattern],
            cores_per_chip,
            load_tables=[load_table],
        )
    if arbitration == "iw" and vc_weight_tables is None:
        vc_weight_tables = make_vc_weight_tables(
            machine,
            route_computer,
            [pattern],
            cores_per_chip,
            load_tables=[load_table],
        )
    spec = BatchSpec(
        pattern,
        packets_per_source=batch_size,
        cores_per_chip=cores_per_chip,
        seed=seed,
    )
    start = time.perf_counter()
    stats = run_batch(
        machine,
        route_computer,
        spec,
        arbitration=arbitration,
        weight_tables=weight_tables,
        vc_weight_tables=vc_weight_tables,
        trace=collector,
        checkpoint_path=checkpoint_path,
        checkpoint_every=checkpoint_every,
    )
    wall = time.perf_counter() - start
    ideal = ideal_batch_cycles(machine, load_table, batch_size)
    return ThroughputPoint(
        pattern=pattern.name,
        arbitration=label or arbitration,
        batch_size=batch_size,
        normalized_throughput=ideal / stats.last_delivery_cycle,
        finish_spread=stats.finish_spread() or 0.0,
        completion_cycles=stats.last_delivery_cycle,
        wall_seconds=wall,
        metrics=(
            None if collector is None else collector.summary(stats.end_cycle)
        ),
    )


@dataclasses.dataclass(frozen=True)
class BatchPoint:
    """Picklable spec of one batch-throughput simulation point.

    Carries the machine *config* rather than the machine: workers rebuild
    (and cache) the elaborated machine per process via
    :func:`repro.sim.sweep.shared_machine`. ``weight_patterns`` names the
    patterns whose analytic loads program the inverse-weight tables for
    ``arbitration="iw"`` (empty means: the measured pattern itself).
    """

    config: MachineConfig
    pattern: TrafficPattern
    batch_size: int
    cores_per_chip: int
    arbitration: str
    weight_patterns: Tuple[TrafficPattern, ...] = ()
    seed: int = 0
    label: Optional[str] = None
    #: Override for the reported pattern name (e.g. the blend fraction).
    pattern_label: Optional[str] = None
    #: Attach a streaming :class:`~repro.sim.metrics.MetricsCollector`
    #: to the run; the point comes back with a picklable
    #: :class:`~repro.sim.metrics.MetricsSummary` in ``metrics``.
    collect_metrics: bool = False
    #: Busy-tick window grain (cycles) for collected metrics.
    metrics_window: int = 256
    #: Mid-run checkpoint file for this point (see
    #: :mod:`repro.sim.checkpoint`): written every ``checkpoint_every``
    #: cycles, removed on completion, resumed from when present -- so a
    #: killed sweep finishes its interrupted point bitwise-identically.
    checkpoint_path: Optional[str] = None
    checkpoint_every: int = 0


#: Per-process caches of analytic loads and programmed weight tables,
#: keyed by (config, pattern names, cores): each worker computes a given
#: table set once per sweep, mirroring the serial harness's reuse.
_LOADS_CACHE: Dict[tuple, LoadTable] = {}
_TABLES_CACHE: Dict[tuple, tuple] = {}


def _loads_for(machine, route_computer, pattern, cores_per_chip) -> LoadTable:
    key = (machine.config, pattern.name, cores_per_chip)
    table = _LOADS_CACHE.get(key)
    if table is None:
        table = compute_loads(machine, route_computer, pattern, cores_per_chip)
        _LOADS_CACHE[key] = table
    return table


def _weight_tables_for(machine, route_computer, patterns, cores_per_chip):
    key = (machine.config, tuple(p.name for p in patterns), cores_per_chip)
    tables = _TABLES_CACHE.get(key)
    if tables is None:
        load_tables = [
            _loads_for(machine, route_computer, pattern, cores_per_chip)
            for pattern in patterns
        ]
        tables = (
            make_weight_tables(
                machine, route_computer, patterns, cores_per_chip,
                load_tables=load_tables,
            ),
            make_vc_weight_tables(
                machine, route_computer, patterns, cores_per_chip,
                load_tables=load_tables,
            ),
        )
        _TABLES_CACHE[key] = tables
    return tables


def measure_batch_point(point: BatchPoint) -> ThroughputPoint:
    """Run one :class:`BatchPoint` (the sweep-runner work function)."""
    machine, route_computer = shared_machine(point.config)
    load_table = _loads_for(
        machine, route_computer, point.pattern, point.cores_per_chip
    )
    weight_tables = vc_weight_tables = None
    if point.arbitration == "iw":
        weight_tables, vc_weight_tables = _weight_tables_for(
            machine,
            route_computer,
            point.weight_patterns or (point.pattern,),
            point.cores_per_chip,
        )
    collector = (
        MetricsCollector(window_cycles=point.metrics_window)
        if point.collect_metrics
        else None
    )
    result = measure_batch(
        machine,
        route_computer,
        point.pattern,
        point.batch_size,
        point.cores_per_chip,
        point.arbitration,
        load_table=load_table,
        weight_tables=weight_tables,
        vc_weight_tables=vc_weight_tables,
        seed=point.seed,
        label=point.label,
        collector=collector,
        checkpoint_path=point.checkpoint_path,
        checkpoint_every=point.checkpoint_every,
    )
    if point.pattern_label is not None:
        result.pattern = point.pattern_label
    return result


def run_batch_points(
    points: Sequence[BatchPoint],
    max_workers: Optional[int] = None,
    checkpoint_dir: Optional[str] = None,
    resume: bool = False,
) -> List[ThroughputPoint]:
    """Fan a list of batch points across cores; results in input order.

    ``checkpoint_dir``/``resume`` enable the sweep runner's crash-resume
    persistence (see :func:`repro.sim.sweep.run_sweep`); pair it with
    per-point ``checkpoint_path`` on the :class:`BatchPoint` specs to
    also resume the interrupted point mid-run.
    """
    results = run_sweep(
        [
            SweepPoint(
                label=f"{p.pattern_label or p.pattern.name}/"
                f"{p.label or p.arbitration}/b{p.batch_size}",
                fn=measure_batch_point,
                kwargs={"point": p},
            )
            for p in points
        ],
        max_workers=max_workers,
        checkpoint_dir=checkpoint_dir,
        resume=resume,
    )
    return [r.value for r in results]


def throughput_vs_batch_size(
    machine: Machine,
    route_computer: RouteComputer,
    patterns: Sequence[TrafficPattern],
    batch_sizes: Sequence[int],
    cores_per_chip: int,
    weight_pattern: Optional[TrafficPattern] = None,
    arbitrations: Sequence[str] = ("rr", "iw"),
    seed: int = 0,
    max_workers: Optional[int] = 1,
) -> List[ThroughputPoint]:
    """The Figure 9 experiment.

    A *single* set of inverse weights -- computed from ``weight_pattern``
    (default: the first pattern, matching the paper's use of
    uniform-derived weights for all traffic) -- is used for every
    measured pattern. ``max_workers`` > 1 fans the points across
    processes; results are identical to serial execution (the default).
    """
    weight_pattern = weight_pattern or patterns[0]
    points = [
        BatchPoint(
            config=machine.config,
            pattern=pattern,
            batch_size=batch_size,
            cores_per_chip=cores_per_chip,
            arbitration=arbitration,
            weight_patterns=(weight_pattern,),
            seed=seed,
        )
        for pattern in patterns
        for batch_size in batch_sizes
        for arbitration in arbitrations
    ]
    return run_batch_points(points, max_workers=max_workers)


def blend_sweep(
    machine: Machine,
    route_computer: RouteComputer,
    pattern_a: TrafficPattern,
    pattern_b: TrafficPattern,
    fractions: Sequence[float],
    batch_size: int,
    cores_per_chip: int,
    seed: int = 0,
    max_workers: Optional[int] = 1,
) -> List[ThroughputPoint]:
    """The Figure 10 experiment: blend two patterns, vary the fraction,
    and measure four arbiter configurations:

    * ``none`` -- round-robin arbitration;
    * ``forward`` -- inverse weights for ``pattern_a`` only;
    * ``reverse`` -- inverse weights for ``pattern_b`` only;
    * ``both`` -- two weight sets, packets labeled by component pattern.

    ``max_workers`` > 1 fans the (fraction x arbiter-config) points across
    processes; results are identical to serial execution (the default).
    """
    label_weights = {
        "none": (),
        "forward": (pattern_a,),
        "reverse": (pattern_b,),
        "both": (pattern_a, pattern_b),
    }
    points = [
        BatchPoint(
            config=machine.config,
            pattern=Blend([pattern_a, pattern_b], [fraction, 1.0 - fraction]),
            batch_size=batch_size,
            cores_per_chip=cores_per_chip,
            arbitration="rr" if label == "none" else "iw",
            weight_patterns=label_weights[label],
            seed=seed,
            label=label,
            pattern_label=f"{fraction:.2f} {pattern_a.name}",
        )
        for fraction in fractions
        for label in ("none", "forward", "reverse", "both")
    ]
    return run_batch_points(points, max_workers=max_workers)
