"""Throughput experiment harnesses (Figures 9 and 10).

These wrap the simulator into the paper's measurement methodology:
normalized batch throughput versus batch size for different arbitration
policies (Figure 9), and versus blend fraction for different arbiter
weight sets (Figure 10).
"""

from __future__ import annotations

import dataclasses
import time
from typing import Dict, List, Optional, Sequence

from repro.core.machine import Machine
from repro.core.routing import RouteComputer
from repro.sim.simulator import make_vc_weight_tables, make_weight_tables, run_batch
from repro.traffic.batch import BatchSpec
from repro.traffic.loads import LoadTable, compute_loads, ideal_batch_cycles
from repro.traffic.patterns import Blend, TrafficPattern


@dataclasses.dataclass
class ThroughputPoint:
    """One measured point of a throughput experiment."""

    pattern: str
    arbitration: str
    batch_size: int
    normalized_throughput: float
    finish_spread: float
    completion_cycles: int
    wall_seconds: float


def measure_batch(
    machine: Machine,
    route_computer: RouteComputer,
    pattern: TrafficPattern,
    batch_size: int,
    cores_per_chip: int,
    arbitration: str,
    load_table: Optional[LoadTable] = None,
    weight_tables: Optional[Dict] = None,
    vc_weight_tables: Optional[Dict] = None,
    seed: int = 0,
    label: Optional[str] = None,
) -> ThroughputPoint:
    """Run one batch and normalize its completion time.

    Normalization follows Section 4.1: a throughput of 1 means the
    busiest torus channel (under the pattern's expected loads) was never
    idle.
    """
    if load_table is None:
        load_table = compute_loads(machine, route_computer, pattern, cores_per_chip)
    if arbitration == "iw" and weight_tables is None:
        # Default to weights programmed from the measured pattern itself.
        weight_tables = make_weight_tables(
            machine,
            route_computer,
            [pattern],
            cores_per_chip,
            load_tables=[load_table],
        )
    if arbitration == "iw" and vc_weight_tables is None:
        vc_weight_tables = make_vc_weight_tables(
            machine,
            route_computer,
            [pattern],
            cores_per_chip,
            load_tables=[load_table],
        )
    spec = BatchSpec(
        pattern,
        packets_per_source=batch_size,
        cores_per_chip=cores_per_chip,
        seed=seed,
    )
    start = time.perf_counter()
    stats = run_batch(
        machine,
        route_computer,
        spec,
        arbitration=arbitration,
        weight_tables=weight_tables,
        vc_weight_tables=vc_weight_tables,
    )
    wall = time.perf_counter() - start
    ideal = ideal_batch_cycles(machine, load_table, batch_size)
    return ThroughputPoint(
        pattern=pattern.name,
        arbitration=label or arbitration,
        batch_size=batch_size,
        normalized_throughput=ideal / stats.last_delivery_cycle,
        finish_spread=stats.finish_spread() or 0.0,
        completion_cycles=stats.last_delivery_cycle,
        wall_seconds=wall,
    )


def throughput_vs_batch_size(
    machine: Machine,
    route_computer: RouteComputer,
    patterns: Sequence[TrafficPattern],
    batch_sizes: Sequence[int],
    cores_per_chip: int,
    weight_pattern: Optional[TrafficPattern] = None,
    arbitrations: Sequence[str] = ("rr", "iw"),
    seed: int = 0,
) -> List[ThroughputPoint]:
    """The Figure 9 experiment.

    A *single* set of inverse weights -- computed from ``weight_pattern``
    (default: the first pattern, matching the paper's use of
    uniform-derived weights for all traffic) -- is used for every
    measured pattern.
    """
    weight_pattern = weight_pattern or patterns[0]
    weight_tables = None
    vc_weight_tables = None
    if "iw" in arbitrations:
        weight_loads = compute_loads(
            machine, route_computer, weight_pattern, cores_per_chip
        )
        weight_tables = make_weight_tables(
            machine, route_computer, [weight_pattern], cores_per_chip,
            load_tables=[weight_loads],
        )
        vc_weight_tables = make_vc_weight_tables(
            machine, route_computer, [weight_pattern], cores_per_chip,
            load_tables=[weight_loads],
        )
    points = []
    for pattern in patterns:
        load_table = compute_loads(
            machine, route_computer, pattern, cores_per_chip
        )
        for batch_size in batch_sizes:
            for arbitration in arbitrations:
                points.append(
                    measure_batch(
                        machine,
                        route_computer,
                        pattern,
                        batch_size,
                        cores_per_chip,
                        arbitration,
                        load_table=load_table,
                        weight_tables=weight_tables if arbitration == "iw" else None,
                        vc_weight_tables=(
                            vc_weight_tables if arbitration == "iw" else None
                        ),
                        seed=seed,
                    )
                )
    return points


def blend_sweep(
    machine: Machine,
    route_computer: RouteComputer,
    pattern_a: TrafficPattern,
    pattern_b: TrafficPattern,
    fractions: Sequence[float],
    batch_size: int,
    cores_per_chip: int,
    seed: int = 0,
) -> List[ThroughputPoint]:
    """The Figure 10 experiment: blend two patterns, vary the fraction,
    and measure four arbiter configurations:

    * ``none`` -- round-robin arbitration;
    * ``forward`` -- inverse weights for ``pattern_a`` only;
    * ``reverse`` -- inverse weights for ``pattern_b`` only;
    * ``both`` -- two weight sets, packets labeled by component pattern.
    """
    loads_a = compute_loads(machine, route_computer, pattern_a, cores_per_chip)
    loads_b = compute_loads(machine, route_computer, pattern_b, cores_per_chip)
    table_loads = {
        "forward": ([pattern_a], [loads_a]),
        "reverse": ([pattern_b], [loads_b]),
        "both": ([pattern_a, pattern_b], [loads_a, loads_b]),
    }
    tables = {}
    vc_tables = {}
    for label, (pats, loads) in table_loads.items():
        tables[label] = make_weight_tables(
            machine, route_computer, pats, cores_per_chip, load_tables=loads
        )
        vc_tables[label] = make_vc_weight_tables(
            machine, route_computer, pats, cores_per_chip, load_tables=loads
        )
    points = []
    for fraction in fractions:
        blend = Blend([pattern_a, pattern_b], [fraction, 1.0 - fraction])
        load_table = compute_loads(machine, route_computer, blend, cores_per_chip)
        for label in ("none", "forward", "reverse", "both"):
            arbitration = "rr" if label == "none" else "iw"
            point = measure_batch(
                machine,
                route_computer,
                blend,
                batch_size,
                cores_per_chip,
                arbitration,
                load_table=load_table,
                weight_tables=tables.get(label),
                vc_weight_tables=vc_tables.get(label),
                seed=seed,
                label=label,
            )
            point.pattern = f"{fraction:.2f} {pattern_a.name}"
            points.append(point)
    return points
