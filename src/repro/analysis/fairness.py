"""Equality-of-service metrics and arbiter-level fairness experiments.

Section 3.1 defines equality of service (EoS): each arbitration point
should grant its inputs in proportion to the load each input carries, so
that every *source* gets an equal share of any bottleneck. This module
provides:

* the Figure 5 worked example as an executable scenario
  (:func:`figure5_loads`);
* a driven-arbiter experiment (:func:`grant_ratio_experiment`) that
  saturates an arbiter's inputs and measures realized grant ratios --
  the direct test that an inverse-weighted arbiter grants input 0 twice
  as often as input 1 when its load is twice as large;
* whole-run fairness metrics over simulator statistics (Jain's index,
  finish-time spread).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.arbiters.base import Arbiter, SimpleRequest
from repro.sim.stats import SimStats


def figure5_loads() -> Dict[str, Dict[int, float]]:
    """The loads of the Figure 5 example topology.

    Three sources (E0, E1, E2) send 0.5, 1, and 0.75 packets per unit
    time to one destination. Arbiter A merges E0 and E1; arbiter B merges
    A's output with E2. The published conclusions: granting A's input 0
    (E1) twice as often as input 1 (E0) achieves EoS, and granting B's
    input 0 (the A output, 1.5) 1.5/0.75 = 2 times as often as input 1
    (E2) achieves EoS.
    """
    return {
        "A": {0: 1.0, 1: 0.5},
        "B": {0: 1.5, 1: 0.75},
    }


def grant_ratio_experiment(
    arbiter: Arbiter,
    patterns_by_input: Optional[Sequence[int]] = None,
    steps: int = 10_000,
) -> List[float]:
    """Saturate every arbiter input and measure realized grant fractions.

    Every input requests on every cycle (the beyond-saturation regime);
    ``patterns_by_input[i]`` marks input ``i``'s packets with a traffic
    pattern id. Returns each input's share of the total grants.
    """
    num_inputs = arbiter.num_inputs
    if patterns_by_input is None:
        patterns_by_input = [0] * num_inputs
    requests = [
        SimpleRequest(pattern=patterns_by_input[i], inject_cycle=0)
        for i in range(num_inputs)
    ]
    arbiter.reset_history()
    for _step in range(steps):
        granted = arbiter.arbitrate(list(requests))
        if granted is None:  # pragma: no cover - all inputs request
            raise AssertionError("saturated arbiter issued no grant")
    total = sum(arbiter.grants)
    return [count / total for count in arbiter.grants]


def expected_shares(loads: Sequence[float]) -> List[float]:
    """EoS grant shares implied by per-input loads."""
    total = sum(loads)
    if total <= 0:
        raise ValueError("total load must be positive")
    return [load / total for load in loads]


def jain_index(values: Sequence[float]) -> float:
    """Jain's fairness index: 1 is perfectly fair, 1/n maximally unfair."""
    if not values:
        raise ValueError("values must be nonempty")
    total = sum(values)
    squares = sum(v * v for v in values)
    if squares == 0:
        return 1.0
    return total * total / (len(values) * squares)


def finish_time_fairness(stats: SimStats) -> Tuple[float, float]:
    """(Jain index of per-source finish times, relative spread).

    In a perfectly fair batch run every source finishes together: Jain
    index 1, spread 0. Round-robin arbitration beyond saturation pushes
    the spread toward 1 (Figure 9's collapse mechanism).
    """
    finishes = list(stats.source_finish_cycle.values())
    if not finishes:
        raise ValueError("no sources finished")
    return jain_index(finishes), stats.finish_spread() or 0.0


def mid_run_service_fairness(stats: SimStats) -> float:
    """Jain index over per-source delivered packet counts.

    Meaningful for open-loop runs or snapshots; after a completed batch
    every source has delivered its full batch and the index is 1 by
    construction.
    """
    counts = list(stats.delivered_per_source.values())
    if not counts:
        raise ValueError("no deliveries recorded")
    return jain_index(counts)
