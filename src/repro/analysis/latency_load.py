"""Latency versus offered load: the classic network characterization.

The paper reports latency at zero load (Figures 11-12) and throughput
beyond saturation (Figures 9-10); this module fills in the curve between
them. Open-loop Bernoulli injection at a swept rate yields the familiar
hockey-stick: flat latency at low load, a knee near the saturation rate
predicted by the analytic channel loads, and runaway queueing beyond it.

The saturation prediction comes from :mod:`repro.traffic.loads`: a
per-source injection rate of ``1 / (max_torus_load x torus_cycles_per
_flit)`` packets/cycle keeps the busiest torus channel exactly busy.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence

from repro.core.machine import Machine
from repro.core.routing import RouteComputer
from repro.sim.engine import Engine
from repro.sim.simulator import arbiter_builder_for
from repro.traffic.batch import generate_open_loop
from repro.traffic.loads import LoadTable, compute_loads
from repro.traffic.patterns import TrafficPattern


@dataclasses.dataclass
class LatencyLoadPoint:
    """One point of the latency-load curve.

    Quantiles come from the engine's deterministic streaming estimator
    (:class:`repro.sim.metrics.StreamingQuantile`), so the curve no
    longer requires retaining every packet's latency in memory.
    """

    offered_load: float
    mean_latency_cycles: float
    p50_latency_cycles: float
    p95_latency_cycles: float
    p99_latency_cycles: float
    delivered: int


def saturation_rate(machine: Machine, table: LoadTable) -> float:
    """Per-source injection rate (packets/cycle) that saturates the
    busiest inter-node channel."""
    bottleneck = table.max_torus_load(machine) * machine.config.torus_cycles_per_flit
    if bottleneck <= 0:
        raise ValueError("pattern places no load on any inter-node channel")
    return 1.0 / bottleneck


def latency_vs_load(
    machine: Machine,
    route_computer: RouteComputer,
    pattern: TrafficPattern,
    cores_per_chip: int,
    fractions_of_saturation: Sequence[float] = (0.2, 0.4, 0.6, 0.8, 0.9),
    duration_cycles: int = 2000,
    arbitration: str = "rr",
    seed: int = 0,
    load_table: Optional[LoadTable] = None,
) -> List[LatencyLoadPoint]:
    """Measure mean/p50/p95/p99 packet latency at fractions of the
    saturation rate.

    Open-loop injection: sources emit Bernoulli packet streams for
    ``duration_cycles`` and the network drains completely, so every
    latency (including queueing at the source) is observed. Quantiles are
    streamed (nearest-rank, exact at these run sizes) rather than
    computed from a retained per-packet latency list.
    """
    if load_table is None:
        load_table = compute_loads(machine, route_computer, pattern, cores_per_chip)
    base_rate = saturation_rate(machine, load_table)
    points = []
    for fraction in fractions_of_saturation:
        rate = min(1.0, fraction * base_rate)
        packets = generate_open_loop(
            machine,
            route_computer,
            pattern,
            injection_rate=rate,
            duration_cycles=duration_cycles,
            cores_per_chip=cores_per_chip,
            seed=seed,
        )
        builder = arbiter_builder_for(arbitration)
        engine = Engine(
            machine, arbiter_builder=builder, latency_quantiles=True
        )
        for packet in packets:
            engine.enqueue(packet)
        stats = engine.run()
        quantiles = stats.latency_quantiles((0.5, 0.95, 0.99))
        points.append(
            LatencyLoadPoint(
                offered_load=fraction,
                mean_latency_cycles=stats.mean_network_latency,
                p50_latency_cycles=float(quantiles[0.5]),
                p95_latency_cycles=float(quantiles[0.95]),
                p99_latency_cycles=float(quantiles[0.99]),
                delivered=stats.delivered,
            )
        )
    return points
