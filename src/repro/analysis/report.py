"""Plain-text reporting: tables and series formatted like the paper's.

Benchmarks print their reproduced tables/figures through these helpers so
that ``pytest benchmarks/ --benchmark-only`` output can be compared
against the paper side by side.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render an aligned plain-text table."""
    columns = len(headers)
    for row in rows:
        if len(row) != columns:
            raise ValueError(f"row {row!r} does not match {columns} headers")
    cells = [[str(h) for h in headers]] + [
        [_format_cell(value) for value in row] for row in rows
    ]
    widths = [max(len(line[i]) for line in cells) for i in range(columns)]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(cells[0], widths))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in cells[1:]:
        lines.append(
            "  ".join(cell.rjust(w) for cell, w in zip(row, widths))
        )
    return "\n".join(lines)


def _format_cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}" if abs(value) < 100 else f"{value:.1f}"
    return str(value)


def format_series(
    series: Dict[str, Dict[object, float]],
    x_label: str = "x",
    title: Optional[str] = None,
) -> str:
    """Render ``{curve: {x: y}}`` data as an aligned table, one row per x.

    The plain-text analogue of a figure with several curves.
    """
    xs: List[object] = sorted({x for curve in series.values() for x in curve})
    headers = [x_label] + list(series)
    rows = []
    for x in xs:
        row: List[object] = [x]
        for name in series:
            value = series[name].get(x)
            row.append("-" if value is None else value)
        rows.append(row)
    return format_table(headers, rows, title=title)


def ascii_bar_chart(
    values: Dict[str, float], width: int = 50, title: Optional[str] = None
) -> str:
    """Horizontal bar chart for quick visual comparison in test output."""
    if not values:
        raise ValueError("values must be nonempty")
    peak = max(values.values())
    label_width = max(len(label) for label in values)
    lines = [title] if title else []
    for label, value in values.items():
        bar = "#" * (int(width * value / peak) if peak > 0 else 0)
        lines.append(f"{label.ljust(label_width)}  {value:8.2f}  {bar}")
    return "\n".join(lines)


def side_by_side(paper: Dict[str, float], measured: Dict[str, float], title: str) -> str:
    """Paper-vs-measured comparison table used by EXPERIMENTS.md entries."""
    rows = []
    for key in paper:
        measured_value = measured.get(key)
        rows.append(
            [
                key,
                paper[key],
                "-" if measured_value is None else measured_value,
            ]
        )
    return format_table(["quantity", "paper", "measured"], rows, title=title)
