"""Experiment harnesses, fairness metrics, and reporting."""

from .degradation import (
    DegradedPoint,
    DegradedThroughputPoint,
    degradation_sweep,
    measure_degraded_point,
)
from .fairness import (
    expected_shares,
    figure5_loads,
    finish_time_fairness,
    grant_ratio_experiment,
    jain_index,
    mid_run_service_fairness,
)
from .latency_load import LatencyLoadPoint, latency_vs_load, saturation_rate
from .report import ascii_bar_chart, format_series, format_table, side_by_side
from .throughput import (
    ThroughputPoint,
    blend_sweep,
    measure_batch,
    throughput_vs_batch_size,
)

__all__ = [
    "DegradedPoint",
    "DegradedThroughputPoint",
    "LatencyLoadPoint",
    "ThroughputPoint",
    "degradation_sweep",
    "measure_degraded_point",
    "ascii_bar_chart",
    "blend_sweep",
    "expected_shares",
    "figure5_loads",
    "finish_time_fairness",
    "format_series",
    "format_table",
    "grant_ratio_experiment",
    "jain_index",
    "latency_vs_load",
    "measure_batch",
    "saturation_rate",
    "mid_run_service_fairness",
    "side_by_side",
    "throughput_vs_batch_size",
]
