"""Degraded-machine throughput and fairness analysis.

A fault set turns the healthy Anton 2 machine into a *degraded* one:
fewer torus channels carrying the same traffic, over detoured routes.
This module measures what that costs, using the same methodology as the
healthy-throughput experiments (Section 4.1 normalization) so the two
are directly comparable:

* expected channel and arbiter loads are recomputed over the
  *fault-aware* routes (``use_symmetry=False`` -- faults break the
  translation symmetry the fast load path exploits);
* for inverse-weighted arbitration, weight tables are programmed from
  those degraded loads, mirroring how the offline flow of Section 3.2
  would re-program a machine after reconfiguring around a failure;
* normalized throughput uses the degraded ideal bound, so a value near 1
  means the simulator extracts nearly all the bandwidth the surviving
  topology offers.

Every measured point is an independent simulation described by a
picklable :class:`DegradedPoint` (the fault set rides along as its
canonical JSON string), so sweeps fan across cores through
:mod:`repro.sim.sweep` exactly like the healthy Figure 9 harness.
"""

from __future__ import annotations

import dataclasses
import time
from typing import List, Optional, Sequence

from repro.core.machine import ChannelKind, Machine, MachineConfig
from repro.faults.model import FaultSet, sample_link_faults
from repro.faults.runtime import FaultPolicy, FaultRuntime
from repro.sim.simulator import make_vc_weight_tables, make_weight_tables, run_batch
from repro.sim.sweep import SweepPoint, run_sweep, shared_machine
from repro.traffic.batch import BatchSpec
from repro.traffic.loads import compute_loads, ideal_batch_cycles
from repro.traffic.patterns import TrafficPattern

from .fairness import jain_index


@dataclasses.dataclass
class DegradedThroughputPoint:
    """One measured point of a degradation experiment."""

    pattern: str
    arbitration: str
    policy: str
    #: Number of fault specs in the applied fault set (0 = healthy).
    failed_links: int
    #: Throughput normalized to the *degraded* ideal bound: the busiest
    #: surviving torus channel under the fault-aware routes.
    normalized_throughput: float
    #: The same completion time normalized to the *healthy* machine's
    #: ideal bound -- the end-to-end cost of the failures.
    throughput_vs_healthy_ideal: float
    finish_spread: float
    #: Jain index of per-source batch finish times (1 = perfectly fair).
    finish_jain: float
    completion_cycles: int
    delivered: int
    dropped: int
    rerouted: int
    retried: int
    unroutable: int
    wall_seconds: float
    #: The applied fault set, canonical JSON (reproduces the run).
    fault_json: str


@dataclasses.dataclass(frozen=True)
class DegradedPoint:
    """Picklable spec of one degraded-batch simulation point.

    Like :class:`repro.analysis.throughput.BatchPoint`, this carries the
    machine *config* (workers rebuild and cache the machine per process)
    -- plus the fault set as its canonical JSON string, which is both
    picklable and the reproducibility artifact for the run.
    """

    config: MachineConfig
    pattern: TrafficPattern
    batch_size: int
    cores_per_chip: int
    fault_json: str
    arbitration: str = "iw"
    #: Stranded-packet policy for mid-run faults (reroute/drop/retry).
    policy_mode: str = "reroute"
    max_retries: int = 4
    seed: int = 0


def measure_degraded_point(point: DegradedPoint) -> DegradedThroughputPoint:
    """Run one :class:`DegradedPoint` (the sweep-runner work function)."""
    machine, healthy_routes = shared_machine(point.config)
    fault_set = FaultSet.from_json(point.fault_json)
    runtime = FaultRuntime(
        machine,
        fault_set,
        policy=FaultPolicy(mode=point.policy_mode, max_retries=point.max_retries),
    )
    routes = runtime.route_computer
    # Degraded loads over the fault-aware routes. Faults break the
    # translation symmetry compute_loads exploits by default, so force
    # the exhaustive path (also correct, just slower, for zero faults).
    load_table = compute_loads(
        machine,
        routes,
        point.pattern,
        point.cores_per_chip,
        use_symmetry=False,
    )
    weight_tables = vc_weight_tables = None
    if point.arbitration == "iw":
        weight_tables = make_weight_tables(
            machine, routes, [point.pattern], point.cores_per_chip,
            load_tables=[load_table],
        )
        vc_weight_tables = make_vc_weight_tables(
            machine, routes, [point.pattern], point.cores_per_chip,
            load_tables=[load_table],
        )
    spec = BatchSpec(
        point.pattern,
        packets_per_source=point.batch_size,
        cores_per_chip=point.cores_per_chip,
        seed=point.seed,
    )
    start = time.perf_counter()
    stats = run_batch(
        machine,
        routes,
        spec,
        arbitration=point.arbitration,
        weight_tables=weight_tables,
        vc_weight_tables=vc_weight_tables,
        faults=runtime,
    )
    wall = time.perf_counter() - start
    ideal = ideal_batch_cycles(machine, load_table, point.batch_size)
    healthy_table = compute_loads(
        machine, healthy_routes, point.pattern, point.cores_per_chip
    )
    healthy_ideal = ideal_batch_cycles(machine, healthy_table, point.batch_size)
    finishes = list(stats.source_finish_cycle.values())
    return DegradedThroughputPoint(
        pattern=point.pattern.name,
        arbitration=point.arbitration,
        policy=point.policy_mode,
        failed_links=len(fault_set),
        normalized_throughput=ideal / stats.last_delivery_cycle,
        throughput_vs_healthy_ideal=healthy_ideal / stats.last_delivery_cycle,
        finish_spread=stats.finish_spread() or 0.0,
        finish_jain=jain_index(finishes) if finishes else 1.0,
        completion_cycles=stats.last_delivery_cycle,
        delivered=stats.delivered,
        dropped=stats.dropped,
        rerouted=stats.rerouted,
        retried=stats.retried,
        unroutable=stats.unroutable,
        wall_seconds=wall,
        fault_json=point.fault_json,
    )


def degradation_sweep(
    machine: Machine,
    pattern: TrafficPattern,
    batch_size: int,
    cores_per_chip: int,
    max_failed: int,
    arbitration: str = "iw",
    policy_mode: str = "reroute",
    kinds: Sequence[ChannelKind] = (ChannelKind.TORUS,),
    fault_seed: int = 0,
    seed: int = 0,
    max_workers: Optional[int] = 1,
) -> List[DegradedThroughputPoint]:
    """Throughput and fairness versus number of failed links.

    For each ``k`` in ``0..max_failed``, draws ``k`` random link
    failures (seeded: the sweep is reproducible), reroutes around them,
    reprograms arbiter weights from the degraded loads, and measures one
    batch. ``k=0`` is the healthy baseline: its point runs through the
    identical degraded pipeline, so any fault-handling overhead would
    show up as a baseline shift. ``max_workers`` > 1 fans the points
    across processes; results are identical to serial execution.
    """
    points = [
        DegradedPoint(
            config=machine.config,
            pattern=pattern,
            batch_size=batch_size,
            cores_per_chip=cores_per_chip,
            fault_json=sample_link_faults(
                machine, k, seed=fault_seed, kinds=kinds,
                note=f"degradation sweep k={k}",
            ).to_json(),
            arbitration=arbitration,
            policy_mode=policy_mode,
            seed=seed,
        )
        for k in range(max_failed + 1)
    ]
    results = run_sweep(
        [
            SweepPoint(
                label=f"{pattern.name}/{arbitration}/faults{k}",
                fn=measure_degraded_point,
                kwargs={"point": p},
            )
            for k, p in enumerate(points)
        ],
        max_workers=max_workers,
    )
    return [r.value for r in results]


def verify_degraded_routes(
    machine: Machine,
    fault_set: FaultSet,
    endpoints_per_chip: Optional[int] = None,
) -> "DeadlockReport":
    """Convenience re-export: full degraded route-set deadlock check.

    Thin wrapper over :func:`repro.faults.verify.degraded_report` so the
    analysis layer offers the whole degraded workflow (sample, verify,
    measure) from one module.
    """
    from repro.faults.verify import degraded_report

    return degraded_report(
        machine, fault_set, endpoints_per_chip=endpoints_per_chip
    )


__all__ = [
    "DegradedPoint",
    "DegradedThroughputPoint",
    "degradation_sweep",
    "measure_degraded_point",
    "verify_degraded_routes",
]
